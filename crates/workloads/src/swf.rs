//! [Standard Workload Format](https://www.cs.huji.ac.il/labs/parallel/workload/swf.html)
//! (SWF) trace ingestion.
//!
//! SWF is the archive format of the Parallel Workloads Archive: `;`-prefixed
//! header directives (`; MaxNodes: 1428`) followed by one job per line with
//! **18 whitespace-separated numeric fields**, where `-1` marks an unknown
//! value. The parser is built around [`SwfReader`], a streaming iterator
//! over job lines: header directives accumulate incrementally as they are
//! encountered, the line buffer is reused, and nothing proportional to the
//! file size is ever materialized — which is what lets million-job archive
//! replays parse in one pass at constant overhead. The eager API
//! ([`SwfTrace::parse`], [`load_trace`]) is a thin `collect()` wrapper over
//! the same reader, byte-identical in output and error text.
//!
//! Conversion to simulator-ready [`JobSpec`]s follows the same discipline
//! as the Polaris pipeline (paper §5): drop failed/cancelled jobs, sort by
//! submission, normalize timestamps to the earliest submission, factorize
//! user/group labels, and derive memory where the trace does not record it.
//!
//! The scenario registry resolves `swf:<path>` names through
//! [`load_workload`], so any archive trace sweeps through the experiment
//! harness by name alone — now end-to-end streaming: unusable rows are
//! discarded as they are read and never buffered.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};

use rsched_cluster::{ClusterConfig, JobSpec, ResourceVec};
use rsched_simkit::{SimDuration, SimTime};

use crate::arrivals::ArrivalMode;
use crate::error::WorkloadError;
use crate::registry::ScenarioContext;
use crate::scenarios::Workload;
use crate::trace::Factorizer;

/// Fields per SWF job line.
pub const SWF_FIELD_COUNT: usize = 18;

/// Memory ascribed to each processor when the trace records none
/// (`used_memory_kb == -1`), in GB.
pub const DEFAULT_GB_PER_PROC: u64 = 2;

/// One job line of an SWF trace, fields in archive order. `-1` means
/// "unknown" throughout (field 6, average CPU time, is kept as `f64`; the
/// archive allows fractional seconds there).
#[derive(Debug, Clone, PartialEq)]
pub struct SwfJob {
    /// 1 — job number.
    pub job_id: i64,
    /// 2 — submit time, seconds since trace start.
    pub submit_secs: i64,
    /// 3 — wait time in the queue, seconds.
    pub wait_secs: i64,
    /// 4 — actual run time, seconds.
    pub run_secs: i64,
    /// 5 — number of allocated processors.
    pub allocated_procs: i64,
    /// 6 — average CPU time used, seconds.
    pub avg_cpu_secs: f64,
    /// 7 — used memory, KB per processor.
    pub used_memory_kb: i64,
    /// 8 — requested processors.
    pub requested_procs: i64,
    /// 9 — requested time (walltime estimate), seconds.
    pub requested_secs: i64,
    /// 10 — requested memory, KB per processor.
    pub requested_memory_kb: i64,
    /// 11 — completion status: 1 completed, 0 failed, 5 cancelled.
    pub status: i64,
    /// 12 — user id.
    pub user: i64,
    /// 13 — group id.
    pub group: i64,
    /// 14 — executable (application) number.
    pub executable: i64,
    /// 15 — queue number.
    pub queue: i64,
    /// 16 — partition number.
    pub partition: i64,
    /// 17 — preceding job number (workflow dependency).
    pub preceding_job: i64,
    /// 18 — think time from preceding job, seconds.
    pub think_secs: i64,
}

impl SwfJob {
    /// The processor count to schedule with: allocated if known, else
    /// requested; `None` if the trace records neither.
    pub fn procs(&self) -> Option<u32> {
        [self.allocated_procs, self.requested_procs]
            .into_iter()
            .find(|&p| p > 0)
            .map(|p| p as u32)
    }

    /// The runtime to simulate with: actual if known, else requested;
    /// `None` if the trace records neither.
    pub fn runtime_secs(&self) -> Option<u64> {
        [self.run_secs, self.requested_secs]
            .into_iter()
            .find(|&r| r > 0)
            .map(|r| r as u64)
    }

    /// The per-node demand recorded by the trace. Requested memory (field
    /// 10, KB per processor) — falling back to used memory — becomes the
    /// per-node memory demand, and surplus *requested* processors beyond
    /// the scheduled node count become a per-node CPU-core demand
    /// (multi-core nodes packing several ranks per node). Dimensions the
    /// trace does not record (`-1`) stay zero, so flat machines and traces
    /// without the optional fields behave exactly as before.
    pub fn per_node_demand(&self) -> ResourceVec {
        let mut demand = ResourceVec::ZERO;
        if let Some(kb) = [self.requested_memory_kb, self.used_memory_kb]
            .into_iter()
            .find(|&m| m > 0)
        {
            demand.memory_gb = (kb as u64).div_ceil(1024 * 1024).max(1);
        }
        if let Some(nodes) = self.procs() {
            if self.requested_procs > 0 {
                let requested = self.requested_procs as u32;
                if requested > nodes {
                    demand.cpus = requested.div_ceil(nodes);
                }
            }
        }
        demand
    }

    /// `true` for jobs the conversion keeps: not failed (status 0), not
    /// cancelled (status 5), with a usable runtime and processor count.
    pub fn is_usable(&self) -> bool {
        self.status != 0
            && self.status != 5
            && self.procs().is_some()
            && self.runtime_secs().is_some()
    }
}

/// A parsed SWF trace: the header directives plus the job lines, in file
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SwfTrace {
    /// `(key, value)` header directives in file order (e.g.
    /// `("MaxNodes", "1428")`). Comment lines without a `:` are skipped.
    pub directives: Vec<(String, String)>,
    /// The job lines, in file order (SWF traces are usually but not always
    /// submit-sorted).
    pub jobs: Vec<SwfJob>,
}

impl SwfTrace {
    /// Parse SWF text. Header directives may appear anywhere; every
    /// non-comment, non-blank line must carry exactly
    /// [`SWF_FIELD_COUNT`] numeric fields.
    ///
    /// This is a thin `collect()` over [`SwfReader`]; output and error
    /// text are identical to streaming the same bytes.
    pub fn parse(text: &str) -> Result<SwfTrace, WorkloadError> {
        let mut reader = SwfReader::from_text(text);
        let mut jobs = Vec::new();
        for job in &mut reader {
            jobs.push(job?);
        }
        Ok(SwfTrace {
            directives: reader.into_directives(),
            jobs,
        })
    }

    /// The value of a header directive, matched case-insensitively.
    pub fn directive(&self, key: &str) -> Option<&str> {
        self.directives
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// The machine size from the `MaxNodes` (preferred) or `MaxProcs`
    /// directive, if present and numeric.
    pub fn max_nodes(&self) -> Option<u32> {
        ["MaxNodes", "MaxProcs"]
            .into_iter()
            .find_map(|key| self.directive(key))
            .and_then(|v| v.trim().parse().ok())
    }

    /// A cluster sized to this trace: node count from the header (falling
    /// back to the widest job), memory assuming [`DEFAULT_GB_PER_PROC`] per
    /// node.
    pub fn cluster(&self) -> ClusterConfig {
        let widest = self
            .jobs
            .iter()
            .filter_map(SwfJob::procs)
            .max()
            .unwrap_or(1);
        let nodes = self.max_nodes().unwrap_or(widest).max(widest).max(1);
        ClusterConfig::new(
            nodes,
            nodes as u64 * DEFAULT_GB_PER_PROC.max(mem_ceil_gb(self)),
        )
    }

    /// Convert to simulator-ready jobs, Polaris-pipeline style: keep
    /// [usable](SwfJob::is_usable) jobs, sort by `(submit, job_id)`, take at
    /// most `limit` (0 = all), normalize submissions to the earliest kept
    /// job, re-identify sequentially, and factorize users/groups in
    /// first-appearance order.
    ///
    /// Aggregate memory per job is `used_memory_kb × procs` — falling back
    /// to `requested_memory_kb × procs` — rounded up to whole GB, or
    /// `procs ×` [`DEFAULT_GB_PER_PROC`] when the trace records neither.
    /// The recorded per-node demand (requested memory, surplus requested
    /// processors) rides along as [`SwfJob::per_node_demand`].
    pub fn to_jobs(&self, limit: usize) -> Vec<JobSpec> {
        convert_usable(
            self.jobs
                .iter()
                .filter(|j| j.is_usable())
                .cloned()
                .collect(),
            limit,
        )
    }
}

/// The shared conversion core behind [`SwfTrace::to_jobs`] and
/// [`SwfReader::into_jobs`]: takes the already-filtered usable rows (in
/// file order), sorts, truncates, normalizes, and factorizes. Both entry
/// points produce bit-identical output because they both land here.
/// Convert an arbitrary stream of raw rows to simulator-ready jobs via
/// the same core as [`SwfTrace::to_jobs`]: unusable rows are dropped as
/// they stream past, then the survivors are sorted, truncated to `limit`
/// (0 = all), normalized, and factorized. Lets synthetic row generators
/// (`rsched_workloads::synth`) share the exact SWF conversion semantics.
pub fn jobs_from_rows(rows: impl IntoIterator<Item = SwfJob>, limit: usize) -> Vec<JobSpec> {
    convert_usable(rows.into_iter().filter(SwfJob::is_usable).collect(), limit)
}

fn convert_usable(mut usable: Vec<SwfJob>, limit: usize) -> Vec<JobSpec> {
    usable.sort_by_key(|j| (j.submit_secs, j.job_id));
    if limit > 0 {
        usable.truncate(limit);
    }
    let Some(origin) = usable.first().map(|j| j.submit_secs) else {
        return Vec::new();
    };
    let mut users = Factorizer::new();
    let mut groups = Factorizer::new();
    usable
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let procs = j.procs().expect("usable");
            let runtime = j.runtime_secs().expect("usable").max(1);
            // Aggregate memory prefers *used* (what actually happened);
            // the per-node demand prefers *requested* (what the user
            // asked the scheduler for).
            let memory_gb = if let Some(kb) = [j.used_memory_kb, j.requested_memory_kb]
                .into_iter()
                .find(|&m| m > 0)
            {
                ((kb as u64 * procs as u64).div_ceil(1024 * 1024)).max(1)
            } else {
                procs as u64 * DEFAULT_GB_PER_PROC
            };
            // Archive traces record overruns (run > requested, killed
            // late); pad to the actual runtime so schedulers never see
            // a job outlive its declared walltime, as in the Polaris
            // pipeline.
            let walltime = (j.requested_secs.max(0) as u64).max(runtime);
            JobSpec::new(
                i as u32,
                users.id(&j.user),
                SimTime::from_secs((j.submit_secs - origin).max(0) as u64),
                SimDuration::from_secs(runtime),
                procs,
                memory_gb,
            )
            .with_group(groups.id(&j.group))
            .with_walltime(SimDuration::from_secs(walltime))
            .with_per_node(j.per_node_demand())
        })
        .collect()
}

/// Streaming SWF line parser: an `Iterator<Item = Result<SwfJob,
/// WorkloadError>>` over the job lines of a trace.
///
/// Header directives (`; Key: value`) accumulate incrementally in
/// [`directives`](Self::directives) as the stream advances; comments and
/// blank lines are skipped; the internal line buffer is reused, so memory
/// stays constant regardless of trace size. After the first error the
/// iterator is fused (subsequent `next()` returns `None`) — a malformed
/// line poisons the rest of the stream exactly as it aborts an eager
/// parse.
///
/// ```
/// use rsched_workloads::swf::SwfReader;
///
/// let text = "; MaxNodes: 8\n1 0 0 60 2 -1 -1 2 60 -1 1 1 1 -1 1 1 -1 -1\n";
/// let jobs: Result<Vec<_>, _> = SwfReader::from_text(text).collect();
/// assert_eq!(jobs.unwrap().len(), 1);
/// ```
#[derive(Debug)]
pub struct SwfReader<R> {
    input: R,
    /// Optional source label (a file path) anchoring error locations as
    /// `"{path}: line N"`, matching [`load_trace`].
    source: Option<String>,
    line_no: usize,
    directives: Vec<(String, String)>,
    buf: String,
    done: bool,
}

impl SwfReader<BufReader<File>> {
    /// Stream a trace from a file. Parse errors are anchored to `path`
    /// (`"{path}: line N"`), exactly as [`load_trace`] reports them.
    pub fn open(path: &str) -> Result<Self, WorkloadError> {
        let file = File::open(path).map_err(|e| WorkloadError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        Ok(SwfReader::new(BufReader::new(file)).with_source(path))
    }
}

impl<'a> SwfReader<&'a [u8]> {
    /// Stream a trace from in-memory text.
    pub fn from_text(text: &'a str) -> Self {
        SwfReader::new(text.as_bytes())
    }
}

impl<R: BufRead> SwfReader<R> {
    /// Stream a trace from any buffered reader.
    pub fn new(input: R) -> Self {
        SwfReader {
            input,
            source: None,
            line_no: 0,
            directives: Vec::new(),
            buf: String::new(),
            done: false,
        }
    }

    /// Anchor error locations to a source label (usually a file path).
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// The 1-based number of the last line read (0 before the first).
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    /// Header directives seen **so far**, in file order. Complete only
    /// once the iterator is exhausted (directives may appear anywhere).
    pub fn directives(&self) -> &[(String, String)] {
        &self.directives
    }

    /// Consume the reader, returning the directives seen so far.
    pub fn into_directives(self) -> Vec<(String, String)> {
        self.directives
    }

    /// The value of a directive seen so far, matched case-insensitively.
    pub fn directive(&self, key: &str) -> Option<&str> {
        self.directives
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Stream-convert to simulator-ready jobs: unusable rows (failed,
    /// cancelled, no runtime/procs) are dropped as they are read and
    /// never buffered, then the kept rows go through the same
    /// sort/normalize/factorize core as [`SwfTrace::to_jobs`] —
    /// bit-identical output, without materializing the raw trace.
    pub fn into_jobs(mut self, limit: usize) -> Result<Vec<JobSpec>, WorkloadError> {
        let mut usable: Vec<SwfJob> = Vec::new();
        for job in &mut self {
            let job = job?;
            if job.is_usable() {
                usable.push(job);
            }
        }
        Ok(convert_usable(usable, limit))
    }

    fn anchor(&self, err: WorkloadError) -> WorkloadError {
        match (&self.source, err) {
            (Some(path), WorkloadError::Parse { location, message }) => WorkloadError::Parse {
                location: format!("{path}: {location}"),
                message,
            },
            (_, other) => other,
        }
    }
}

impl<R: BufRead> Iterator for SwfReader<R> {
    type Item = Result<SwfJob, WorkloadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            match self.input.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(WorkloadError::Io {
                        path: self
                            .source
                            .clone()
                            .unwrap_or_else(|| "<swf stream>".to_string()),
                        message: e.to_string(),
                    }));
                }
            }
            self.line_no += 1;
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(';') {
                // `; Key: value` is a directive; anything else is comment.
                if let Some((key, value)) = rest.split_once(':') {
                    let key = key.trim();
                    if !key.is_empty() && !key.contains(char::is_whitespace) {
                        self.directives
                            .push((key.to_string(), value.trim().to_string()));
                    }
                }
                continue;
            }
            let parsed = parse_job_line(line, self.line_no);
            return match parsed {
                Ok(job) => Some(Ok(job)),
                Err(e) => {
                    self.done = true;
                    Some(Err(self.anchor(e)))
                }
            };
        }
    }
}

impl fmt::Display for SwfTrace {
    /// Re-export in SWF text form: directives first, then one 18-field line
    /// per job. `SwfTrace::parse` of the output reproduces the trace.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (key, value) in &self.directives {
            writeln!(f, "; {key}: {value}")?;
        }
        for j in &self.jobs {
            writeln!(
                f,
                "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                j.job_id,
                j.submit_secs,
                j.wait_secs,
                j.run_secs,
                j.allocated_procs,
                j.avg_cpu_secs,
                j.used_memory_kb,
                j.requested_procs,
                j.requested_secs,
                j.requested_memory_kb,
                j.status,
                j.user,
                j.group,
                j.executable,
                j.queue,
                j.partition,
                j.preceding_job,
                j.think_secs
            )?;
        }
        Ok(())
    }
}

fn parse_job_line(line: &str, line_no: usize) -> Result<SwfJob, WorkloadError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != SWF_FIELD_COUNT {
        return Err(WorkloadError::Parse {
            location: format!("line {line_no}"),
            message: format!("expected {SWF_FIELD_COUNT} fields, found {}", fields.len()),
        });
    }
    let bad = |idx: usize| WorkloadError::Parse {
        location: format!("line {line_no}, field {}", idx + 1),
        message: format!("`{}` is not a number", fields[idx]),
    };
    let int = |idx: usize| -> Result<i64, WorkloadError> {
        let raw = fields[idx];
        // The archive occasionally writes integral fields as floats
        // ("3600.0"); accept those but reject anything that is not a
        // *complete* decimal token — `nan`/`inf`, exponent forms, values
        // outside the i64 range, and the truncated tails EOF-cut files
        // produce ("3600." for "3600.25").
        if !is_complete_decimal(raw) {
            return Err(bad(idx));
        }
        raw.parse::<i64>()
            .ok()
            .or_else(|| {
                raw.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && (i64::MIN as f64..=i64::MAX as f64).contains(v))
                    .map(|v| v as i64)
            })
            .ok_or_else(|| bad(idx))
    };
    let float = |idx: usize| -> Result<f64, WorkloadError> {
        let raw = fields[idx];
        if !is_complete_decimal(raw) {
            return Err(bad(idx));
        }
        raw.parse::<f64>().map_err(|_| bad(idx))
    };
    Ok(SwfJob {
        job_id: int(0)?,
        submit_secs: int(1)?,
        wait_secs: int(2)?,
        run_secs: int(3)?,
        allocated_procs: int(4)?,
        avg_cpu_secs: float(5)?,
        used_memory_kb: int(6)?,
        requested_procs: int(7)?,
        requested_secs: int(8)?,
        requested_memory_kb: int(9)?,
        status: int(10)?,
        user: int(11)?,
        group: int(12)?,
        executable: int(13)?,
        queue: int(14)?,
        partition: int(15)?,
        preceding_job: int(16)?,
        think_secs: int(17)?,
    })
}

/// A complete decimal token: optional sign, one or more digits, optionally
/// a `.` followed by one or more digits. Rejects `nan`/`inf`, exponent
/// notation, and truncated tails (`"3600."`, `"-"`, `".5"`) uniformly —
/// an EOF-cut final field now fails with a `line N` error like any other
/// malformed token, instead of slipping through the float fallback.
fn is_complete_decimal(raw: &str) -> bool {
    let digits = raw.strip_prefix(['+', '-']).unwrap_or(raw);
    let all_digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    match digits.split_once('.') {
        Some((int_part, frac)) => all_digits(int_part) && all_digits(frac),
        None => all_digits(digits),
    }
}

/// Parse an SWF trace from text (see [`SwfTrace::parse`]).
pub fn parse_trace(text: &str) -> Result<SwfTrace, WorkloadError> {
    SwfTrace::parse(text)
}

/// Read and parse an SWF trace from a file — a `collect()` over
/// [`SwfReader::open`], so the file streams through a reused line buffer
/// instead of being materialized as one string. Parse locations are
/// anchored to the file (`"{path}: line N"`) for multi-trace sweeps.
pub fn load_trace(path: &str) -> Result<SwfTrace, WorkloadError> {
    let mut reader = SwfReader::open(path)?;
    let mut jobs = Vec::new();
    for job in &mut reader {
        jobs.push(job?);
    }
    Ok(SwfTrace {
        directives: reader.into_directives(),
        jobs,
    })
}

/// The `swf:<path>` entry point used by the scenario registry: load the
/// trace at `path` and convert at most `ctx.n` jobs (`0` = the whole
/// trace). [`ArrivalMode::Static`] zeroes submissions; the context's seed
/// is recorded but unused (trace replay is deterministic).
///
/// End-to-end streaming: unusable rows are dropped as they are read, so
/// peak memory is proportional to the *kept* jobs, not the file.
pub fn load_workload(path: &str, ctx: &ScenarioContext) -> Result<Workload, WorkloadError> {
    let mut jobs = SwfReader::open(path)?.into_jobs(ctx.n)?;
    if ctx.mode == ArrivalMode::Static {
        for j in &mut jobs {
            j.submit = SimTime::ZERO;
        }
    }
    Ok(Workload {
        scenario: format!("swf:{path}"),
        jobs,
        mode: ctx.mode,
        seed: ctx.seed,
    })
}

/// The largest per-job memory in the trace, in whole GB per processor —
/// used to size a derived cluster so every job fits.
fn mem_ceil_gb(trace: &SwfTrace) -> u64 {
    trace
        .jobs
        .iter()
        .filter(|j| j.used_memory_kb > 0)
        .map(|j| (j.used_memory_kb as u64).div_ceil(1024 * 1024))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Example Machine
; MaxNodes: 64
; UnixStartTime: 1100000000
; this free-form comment line is ignored
1 100 10 300 4 -1 1048576 4 600 -1 1 3 1 -1 1 1 -1 -1
2 160 -1 120 2 -1 -1 2 240 -1 1 5 1 -1 1 1 -1 -1
3 40 0 60 1 -1 -1 1 60 -1 0 3 1 -1 1 1 -1 -1
4 220 5 -1 8 -1 -1 8 900 -1 5 7 2 -1 1 1 -1 -1
5 90 2 450 16 -1 2097152 16 600 -1 1 5 1 -1 1 1 -1 -1
6 300 1 500 4 -1 -1 8 800 2097152 1 3 1 -1 1 1 -1 -1
7 360 0 200 2 -1 1048576 2 400 -1 1 5 1 -1 1 1 -1 -1
";

    #[test]
    fn header_directives_parse_case_insensitively() {
        let trace = parse_trace(SAMPLE).expect("parses");
        assert_eq!(trace.directive("maxnodes"), Some("64"));
        assert_eq!(trace.directive("Computer"), Some("Example Machine"));
        assert_eq!(trace.directive("UNIXSTARTTIME"), Some("1100000000"));
        assert_eq!(trace.max_nodes(), Some(64));
        assert_eq!(trace.jobs.len(), 7);
    }

    #[test]
    fn sentinel_fields_survive_and_fallbacks_apply() {
        let trace = parse_trace(SAMPLE).expect("parses");
        // Job 2 has -1 wait and no memory record.
        let j2 = &trace.jobs[1];
        assert_eq!(j2.wait_secs, -1);
        assert_eq!(j2.used_memory_kb, -1);
        assert_eq!(j2.procs(), Some(2));
        // Job 4 has -1 runtime but a requested time; cancelled, so unusable
        // anyway.
        let j4 = &trace.jobs[3];
        assert_eq!(j4.run_secs, -1);
        assert_eq!(j4.runtime_secs(), Some(900));
        assert!(!j4.is_usable(), "cancelled jobs are dropped");
    }

    #[test]
    fn conversion_drops_failed_sorts_and_normalizes() {
        let trace = parse_trace(SAMPLE).expect("parses");
        // Job 3 failed (status 0), job 4 cancelled (status 5) → 5 remain.
        let jobs = trace.to_jobs(0);
        assert_eq!(jobs.len(), 5);
        // Sorted by submit: job 5 (t=90) first, normalized to zero.
        assert_eq!(jobs[0].submit, SimTime::ZERO);
        assert_eq!(jobs[0].nodes, 16);
        assert_eq!(jobs[1].submit, SimTime::from_secs(10)); // 100 - 90
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id.0 as usize, i, "re-identified sequentially");
        }
        // Users factorized in first-appearance order: 5 → 0, 3 → 1.
        assert_eq!(jobs[0].user.0, 0);
        assert_eq!(jobs[1].user.0, 1);
        // Memory: job 5 records 2 GB/proc × 16 procs = 32 GB; job 2 records
        // none → DEFAULT_GB_PER_PROC × 2.
        assert_eq!(jobs[0].memory_gb, 32);
        assert_eq!(jobs[2].memory_gb, 2 * DEFAULT_GB_PER_PROC);
        // Walltime comes from the requested time.
        assert_eq!(jobs[0].walltime, SimDuration::from_secs(600));
    }

    #[test]
    fn per_node_demand_maps_requested_fields_with_sentinel_fallbacks() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let jobs = trace.to_jobs(0);
        // Job 6: 8 requested processors packed onto 4 allocated nodes → 2
        // cores per node; requested memory (2 GB per processor) becomes
        // both the per-node demand and — with no used-memory record — the
        // aggregate.
        let j6 = &jobs[3];
        assert_eq!(j6.nodes, 4);
        assert_eq!(j6.per_node, ResourceVec::new(2, 0, 2, 0));
        assert_eq!(j6.memory_gb, 8);
        // Job 7: requested memory is a -1 sentinel → per-node demand falls
        // back to used memory; requested == allocated → no core demand.
        let j7 = &jobs[4];
        assert_eq!(j7.per_node, ResourceVec::new(0, 0, 1, 0));
        assert_eq!(j7.memory_gb, 2);
        // Job 2 records neither memory field → no per-node demand at all.
        assert!(jobs[2].per_node.is_zero());
        assert_eq!(jobs[2].memory_gb, 2 * DEFAULT_GB_PER_PROC);
    }

    #[test]
    fn limit_truncates_after_sorting() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let jobs = trace.to_jobs(2);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].nodes, 16, "earliest submit survives the cut");
    }

    #[test]
    fn malformed_lines_report_location() {
        let err = parse_trace("1 2 3\n").unwrap_err();
        match &err {
            WorkloadError::Parse { location, message } => {
                assert_eq!(location, "line 1");
                assert!(message.contains("18 fields"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }

        let bad_token = SAMPLE.replace("5 90 2 450", "5 90 2 banana");
        let err = parse_trace(&bad_token).unwrap_err();
        match &err {
            WorkloadError::Parse { location, message } => {
                assert!(location.contains("field 4"), "{location}");
                assert!(message.contains("banana"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_finite_and_out_of_range_numbers_are_rejected() {
        for bad in ["nan", "inf", "-inf", "1e300"] {
            let line = format!("1 0 0 100 4 -1 -1 4 200 -1 {bad} 1 1 -1 1 1 -1 -1\n");
            let err = parse_trace(&line).unwrap_err();
            match &err {
                WorkloadError::Parse { location, message } => {
                    assert!(location.contains("field 11"), "{bad}: {location}");
                    assert!(message.contains(bad), "{bad}: {message}");
                }
                other => panic!("{bad}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn walltime_is_padded_to_the_actual_runtime_on_overruns() {
        // run (900) exceeds requested (600): the job overran and was killed
        // late. Schedulers must never see duration > walltime.
        let line = "1 0 0 900 4 -1 -1 4 600 -1 1 1 1 -1 1 1 -1 -1\n";
        let jobs = parse_trace(line).expect("parses").to_jobs(0);
        assert_eq!(jobs[0].duration, SimDuration::from_secs(900));
        assert_eq!(jobs[0].walltime, SimDuration::from_secs(900));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let re = parse_trace(&trace.to_string()).expect("re-parses");
        assert_eq!(re, trace);
    }

    #[test]
    fn derived_cluster_fits_every_usable_job() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let cluster = trace.cluster();
        assert_eq!(cluster.nodes, 64, "header MaxNodes wins");
        for j in trace.to_jobs(0) {
            assert!(j.nodes <= cluster.nodes);
            assert!(j.memory_gb <= cluster.memory_gb);
        }
    }

    #[test]
    fn headerless_trace_sizes_cluster_from_widest_job() {
        let text = "7 0 0 100 12 -1 -1 12 100 -1 1 1 1 -1 1 1 -1 -1\n";
        let trace = parse_trace(text).expect("parses");
        assert_eq!(trace.max_nodes(), None);
        assert_eq!(trace.cluster().nodes, 12);
    }

    #[test]
    fn missing_file_reports_io_error() {
        match load_trace("/definitely/not/here.swf") {
            Err(WorkloadError::Io { path, .. }) => assert!(path.ends_with("here.swf")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_trace_converts_to_no_jobs() {
        let trace = parse_trace("; Version: 2.2\n").expect("parses");
        assert!(trace.to_jobs(0).is_empty());
    }

    #[test]
    fn streaming_reader_matches_eager_parse() {
        let eager = parse_trace(SAMPLE).expect("parses");
        let mut reader = SwfReader::from_text(SAMPLE);
        let jobs: Vec<SwfJob> = (&mut reader).map(|j| j.expect("streams")).collect();
        assert_eq!(jobs, eager.jobs);
        assert_eq!(reader.directives(), &eager.directives[..]);
        assert_eq!(reader.directive("maxnodes"), Some("64"));
        assert_eq!(reader.line_no(), SAMPLE.lines().count());
    }

    #[test]
    fn streaming_conversion_matches_eager_to_jobs() {
        for limit in [0, 2, 5, 100] {
            let eager = parse_trace(SAMPLE).expect("parses").to_jobs(limit);
            let streamed = SwfReader::from_text(SAMPLE)
                .into_jobs(limit)
                .expect("streams");
            assert_eq!(streamed, eager, "limit {limit}");
        }
    }

    #[test]
    fn streaming_directives_accumulate_incrementally() {
        let mut reader = SwfReader::from_text(SAMPLE);
        assert!(reader.directives().is_empty(), "nothing read yet");
        let first = reader.next().expect("a job").expect("parses");
        assert_eq!(first.job_id, 1);
        // All four directives precede the first job line.
        assert_eq!(reader.directives().len(), 4);
    }

    #[test]
    fn streaming_reader_fuses_after_first_error() {
        let text = "1 2 3\n1 0 0 60 1 -1 -1 1 60 -1 1 1 1 -1 1 1 -1 -1\n";
        let mut reader = SwfReader::from_text(text);
        assert!(reader.next().expect("yields the error").is_err());
        assert!(reader.next().is_none(), "fused: the stream is poisoned");
        assert!(reader.next().is_none());
    }

    #[test]
    fn truncated_final_field_is_rejected_with_location() {
        // An EOF-cut file that lost the tail of its last numeric field
        // ("3600.25" → "3600.") still has 18 fields; the float fallback
        // used to accept it silently. It must fail like any malformed
        // token, with the same `line N, field M` anchoring as the header
        // path.
        let good = "1 0 0 100 4 -1 -1 4 3600.25 -1 1 1 1 -1 1 1 -1 -1\n";
        assert_eq!(
            parse_trace(good).expect("parses").jobs[0].requested_secs,
            3600
        );
        for (bad, field) in [
            ("1 0 0 100 4 -1 -1 4 3600. -1 1 1 1 -1 1 1 -1 -1\n", 9),
            ("1 0 0 100 4 -1 -1 4 3600 -1 1 1 1 -1 1 1 -1 .5\n", 18),
            ("1 0 0 100 4 -1 -1 4 3600 -1 1 1 1 -1 1 1 -1 -\n", 18),
            ("1 0 0 100 4 .5. -1 4 3600 -1 1 1 1 -1 1 1 -1 -1\n", 6),
        ] {
            let err = parse_trace(bad).unwrap_err();
            match &err {
                WorkloadError::Parse { location, message } => {
                    assert_eq!(location, &format!("line 1, field {field}"), "{bad}");
                    assert!(message.contains("is not a number"), "{message}");
                }
                other => panic!("unexpected {other:?}"),
            }
            // The streaming reader reports the identical error.
            let streamed = SwfReader::from_text(bad).next().expect("errors");
            assert_eq!(streamed.unwrap_err(), err);
        }
    }

    #[test]
    fn file_reader_anchors_errors_to_the_path() {
        let trace = load_trace("fixtures/../fixtures/sample.swf");
        // Resolved relative to the crate dir in unit tests; tolerate both
        // outcomes but exercise the open path.
        if let Ok(t) = trace {
            assert_eq!(t.jobs.len(), 7);
        }
        match SwfReader::open("/definitely/not/here.swf") {
            Err(WorkloadError::Io { path, .. }) => assert!(path.ends_with("here.swf")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
