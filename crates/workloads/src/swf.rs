//! [Standard Workload Format](https://www.cs.huji.ac.il/labs/parallel/workload/swf.html)
//! (SWF) trace ingestion.
//!
//! SWF is the archive format of the Parallel Workloads Archive: `;`-prefixed
//! header directives (`; MaxNodes: 1428`) followed by one job per line with
//! **18 whitespace-separated numeric fields**, where `-1` marks an unknown
//! value. This module parses traces into [`SwfTrace`] and converts them to
//! simulator-ready [`JobSpec`]s with the same discipline as the Polaris
//! pipeline (paper §5): drop failed/cancelled jobs, sort by submission,
//! normalize timestamps to the earliest submission, factorize user/group
//! labels, and derive memory where the trace does not record it.
//!
//! The scenario registry resolves `swf:<path>` names through
//! [`load_workload`], so any archive trace sweeps through the experiment
//! harness by name alone.

use std::fmt;
use std::fs;

use rsched_cluster::{ClusterConfig, JobSpec, ResourceVec};
use rsched_simkit::{SimDuration, SimTime};

use crate::arrivals::ArrivalMode;
use crate::error::WorkloadError;
use crate::registry::ScenarioContext;
use crate::scenarios::Workload;
use crate::trace::Factorizer;

/// Fields per SWF job line.
pub const SWF_FIELD_COUNT: usize = 18;

/// Memory ascribed to each processor when the trace records none
/// (`used_memory_kb == -1`), in GB.
pub const DEFAULT_GB_PER_PROC: u64 = 2;

/// One job line of an SWF trace, fields in archive order. `-1` means
/// "unknown" throughout (field 6, average CPU time, is kept as `f64`; the
/// archive allows fractional seconds there).
#[derive(Debug, Clone, PartialEq)]
pub struct SwfJob {
    /// 1 — job number.
    pub job_id: i64,
    /// 2 — submit time, seconds since trace start.
    pub submit_secs: i64,
    /// 3 — wait time in the queue, seconds.
    pub wait_secs: i64,
    /// 4 — actual run time, seconds.
    pub run_secs: i64,
    /// 5 — number of allocated processors.
    pub allocated_procs: i64,
    /// 6 — average CPU time used, seconds.
    pub avg_cpu_secs: f64,
    /// 7 — used memory, KB per processor.
    pub used_memory_kb: i64,
    /// 8 — requested processors.
    pub requested_procs: i64,
    /// 9 — requested time (walltime estimate), seconds.
    pub requested_secs: i64,
    /// 10 — requested memory, KB per processor.
    pub requested_memory_kb: i64,
    /// 11 — completion status: 1 completed, 0 failed, 5 cancelled.
    pub status: i64,
    /// 12 — user id.
    pub user: i64,
    /// 13 — group id.
    pub group: i64,
    /// 14 — executable (application) number.
    pub executable: i64,
    /// 15 — queue number.
    pub queue: i64,
    /// 16 — partition number.
    pub partition: i64,
    /// 17 — preceding job number (workflow dependency).
    pub preceding_job: i64,
    /// 18 — think time from preceding job, seconds.
    pub think_secs: i64,
}

impl SwfJob {
    /// The processor count to schedule with: allocated if known, else
    /// requested; `None` if the trace records neither.
    pub fn procs(&self) -> Option<u32> {
        [self.allocated_procs, self.requested_procs]
            .into_iter()
            .find(|&p| p > 0)
            .map(|p| p as u32)
    }

    /// The runtime to simulate with: actual if known, else requested;
    /// `None` if the trace records neither.
    pub fn runtime_secs(&self) -> Option<u64> {
        [self.run_secs, self.requested_secs]
            .into_iter()
            .find(|&r| r > 0)
            .map(|r| r as u64)
    }

    /// The per-node demand recorded by the trace. Requested memory (field
    /// 10, KB per processor) — falling back to used memory — becomes the
    /// per-node memory demand, and surplus *requested* processors beyond
    /// the scheduled node count become a per-node CPU-core demand
    /// (multi-core nodes packing several ranks per node). Dimensions the
    /// trace does not record (`-1`) stay zero, so flat machines and traces
    /// without the optional fields behave exactly as before.
    pub fn per_node_demand(&self) -> ResourceVec {
        let mut demand = ResourceVec::ZERO;
        if let Some(kb) = [self.requested_memory_kb, self.used_memory_kb]
            .into_iter()
            .find(|&m| m > 0)
        {
            demand.memory_gb = (kb as u64).div_ceil(1024 * 1024).max(1);
        }
        if let Some(nodes) = self.procs() {
            if self.requested_procs > 0 {
                let requested = self.requested_procs as u32;
                if requested > nodes {
                    demand.cpus = requested.div_ceil(nodes);
                }
            }
        }
        demand
    }

    /// `true` for jobs the conversion keeps: not failed (status 0), not
    /// cancelled (status 5), with a usable runtime and processor count.
    pub fn is_usable(&self) -> bool {
        self.status != 0
            && self.status != 5
            && self.procs().is_some()
            && self.runtime_secs().is_some()
    }
}

/// A parsed SWF trace: the header directives plus the job lines, in file
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SwfTrace {
    /// `(key, value)` header directives in file order (e.g.
    /// `("MaxNodes", "1428")`). Comment lines without a `:` are skipped.
    pub directives: Vec<(String, String)>,
    /// The job lines, in file order (SWF traces are usually but not always
    /// submit-sorted).
    pub jobs: Vec<SwfJob>,
}

impl SwfTrace {
    /// Parse SWF text. Header directives may appear anywhere; every
    /// non-comment, non-blank line must carry exactly
    /// [`SWF_FIELD_COUNT`] numeric fields.
    pub fn parse(text: &str) -> Result<SwfTrace, WorkloadError> {
        let mut trace = SwfTrace::default();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(';') {
                // `; Key: value` is a directive; anything else is comment.
                if let Some((key, value)) = rest.split_once(':') {
                    let key = key.trim();
                    if !key.is_empty() && !key.contains(char::is_whitespace) {
                        trace
                            .directives
                            .push((key.to_string(), value.trim().to_string()));
                    }
                }
                continue;
            }
            trace.jobs.push(parse_job_line(line, idx + 1)?);
        }
        Ok(trace)
    }

    /// The value of a header directive, matched case-insensitively.
    pub fn directive(&self, key: &str) -> Option<&str> {
        self.directives
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// The machine size from the `MaxNodes` (preferred) or `MaxProcs`
    /// directive, if present and numeric.
    pub fn max_nodes(&self) -> Option<u32> {
        ["MaxNodes", "MaxProcs"]
            .into_iter()
            .find_map(|key| self.directive(key))
            .and_then(|v| v.trim().parse().ok())
    }

    /// A cluster sized to this trace: node count from the header (falling
    /// back to the widest job), memory assuming [`DEFAULT_GB_PER_PROC`] per
    /// node.
    pub fn cluster(&self) -> ClusterConfig {
        let widest = self
            .jobs
            .iter()
            .filter_map(SwfJob::procs)
            .max()
            .unwrap_or(1);
        let nodes = self.max_nodes().unwrap_or(widest).max(widest).max(1);
        ClusterConfig::new(
            nodes,
            nodes as u64 * DEFAULT_GB_PER_PROC.max(mem_ceil_gb(self)),
        )
    }

    /// Convert to simulator-ready jobs, Polaris-pipeline style: keep
    /// [usable](SwfJob::is_usable) jobs, sort by `(submit, job_id)`, take at
    /// most `limit` (0 = all), normalize submissions to the earliest kept
    /// job, re-identify sequentially, and factorize users/groups in
    /// first-appearance order.
    ///
    /// Aggregate memory per job is `used_memory_kb × procs` — falling back
    /// to `requested_memory_kb × procs` — rounded up to whole GB, or
    /// `procs ×` [`DEFAULT_GB_PER_PROC`] when the trace records neither.
    /// The recorded per-node demand (requested memory, surplus requested
    /// processors) rides along as [`SwfJob::per_node_demand`].
    pub fn to_jobs(&self, limit: usize) -> Vec<JobSpec> {
        let mut usable: Vec<&SwfJob> = self.jobs.iter().filter(|j| j.is_usable()).collect();
        usable.sort_by_key(|j| (j.submit_secs, j.job_id));
        if limit > 0 {
            usable.truncate(limit);
        }
        let Some(origin) = usable.first().map(|j| j.submit_secs) else {
            return Vec::new();
        };
        let mut users = Factorizer::new();
        let mut groups = Factorizer::new();
        usable
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let procs = j.procs().expect("usable");
                let runtime = j.runtime_secs().expect("usable").max(1);
                // Aggregate memory prefers *used* (what actually happened);
                // the per-node demand prefers *requested* (what the user
                // asked the scheduler for).
                let memory_gb = if let Some(kb) = [j.used_memory_kb, j.requested_memory_kb]
                    .into_iter()
                    .find(|&m| m > 0)
                {
                    ((kb as u64 * procs as u64).div_ceil(1024 * 1024)).max(1)
                } else {
                    procs as u64 * DEFAULT_GB_PER_PROC
                };
                // Archive traces record overruns (run > requested, killed
                // late); pad to the actual runtime so schedulers never see
                // a job outlive its declared walltime, as in the Polaris
                // pipeline.
                let walltime = (j.requested_secs.max(0) as u64).max(runtime);
                JobSpec::new(
                    i as u32,
                    users.id(&j.user),
                    SimTime::from_secs((j.submit_secs - origin).max(0) as u64),
                    SimDuration::from_secs(runtime),
                    procs,
                    memory_gb,
                )
                .with_group(groups.id(&j.group))
                .with_walltime(SimDuration::from_secs(walltime))
                .with_per_node(j.per_node_demand())
            })
            .collect()
    }
}

impl fmt::Display for SwfTrace {
    /// Re-export in SWF text form: directives first, then one 18-field line
    /// per job. `SwfTrace::parse` of the output reproduces the trace.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (key, value) in &self.directives {
            writeln!(f, "; {key}: {value}")?;
        }
        for j in &self.jobs {
            writeln!(
                f,
                "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                j.job_id,
                j.submit_secs,
                j.wait_secs,
                j.run_secs,
                j.allocated_procs,
                j.avg_cpu_secs,
                j.used_memory_kb,
                j.requested_procs,
                j.requested_secs,
                j.requested_memory_kb,
                j.status,
                j.user,
                j.group,
                j.executable,
                j.queue,
                j.partition,
                j.preceding_job,
                j.think_secs
            )?;
        }
        Ok(())
    }
}

fn parse_job_line(line: &str, line_no: usize) -> Result<SwfJob, WorkloadError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != SWF_FIELD_COUNT {
        return Err(WorkloadError::Parse {
            location: format!("line {line_no}"),
            message: format!("expected {SWF_FIELD_COUNT} fields, found {}", fields.len()),
        });
    }
    let int = |idx: usize| -> Result<i64, WorkloadError> {
        let raw = fields[idx];
        // The archive occasionally writes integral fields as floats
        // ("3600.0"); accept those but reject anything non-numeric,
        // including `nan`/`inf` and values outside the i64 range.
        raw.parse::<i64>()
            .ok()
            .or_else(|| {
                raw.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && (i64::MIN as f64..=i64::MAX as f64).contains(v))
                    .map(|v| v as i64)
            })
            .ok_or_else(|| WorkloadError::Parse {
                location: format!("line {line_no}, field {}", idx + 1),
                message: format!("`{raw}` is not a number"),
            })
    };
    let float = |idx: usize| -> Result<f64, WorkloadError> {
        fields[idx]
            .parse::<f64>()
            .map_err(|_| WorkloadError::Parse {
                location: format!("line {line_no}, field {}", idx + 1),
                message: format!("`{}` is not a number", fields[idx]),
            })
    };
    Ok(SwfJob {
        job_id: int(0)?,
        submit_secs: int(1)?,
        wait_secs: int(2)?,
        run_secs: int(3)?,
        allocated_procs: int(4)?,
        avg_cpu_secs: float(5)?,
        used_memory_kb: int(6)?,
        requested_procs: int(7)?,
        requested_secs: int(8)?,
        requested_memory_kb: int(9)?,
        status: int(10)?,
        user: int(11)?,
        group: int(12)?,
        executable: int(13)?,
        queue: int(14)?,
        partition: int(15)?,
        preceding_job: int(16)?,
        think_secs: int(17)?,
    })
}

/// Parse an SWF trace from text (see [`SwfTrace::parse`]).
pub fn parse_trace(text: &str) -> Result<SwfTrace, WorkloadError> {
    SwfTrace::parse(text)
}

/// Read and parse an SWF trace from a file.
pub fn load_trace(path: &str) -> Result<SwfTrace, WorkloadError> {
    let text = fs::read_to_string(path).map_err(|e| WorkloadError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    SwfTrace::parse(&text).map_err(|e| match e {
        // Anchor parse locations to the file for multi-trace sweeps.
        WorkloadError::Parse { location, message } => WorkloadError::Parse {
            location: format!("{path}: {location}"),
            message,
        },
        other => other,
    })
}

/// The `swf:<path>` entry point used by the scenario registry: load the
/// trace at `path` and convert at most `ctx.n` jobs (`0` = the whole
/// trace). [`ArrivalMode::Static`] zeroes submissions; the context's seed
/// is recorded but unused (trace replay is deterministic).
pub fn load_workload(path: &str, ctx: &ScenarioContext) -> Result<Workload, WorkloadError> {
    let trace = load_trace(path)?;
    let mut jobs = trace.to_jobs(ctx.n);
    if ctx.mode == ArrivalMode::Static {
        for j in &mut jobs {
            j.submit = SimTime::ZERO;
        }
    }
    Ok(Workload {
        scenario: format!("swf:{path}"),
        jobs,
        mode: ctx.mode,
        seed: ctx.seed,
    })
}

/// The largest per-job memory in the trace, in whole GB per processor —
/// used to size a derived cluster so every job fits.
fn mem_ceil_gb(trace: &SwfTrace) -> u64 {
    trace
        .jobs
        .iter()
        .filter(|j| j.used_memory_kb > 0)
        .map(|j| (j.used_memory_kb as u64).div_ceil(1024 * 1024))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Example Machine
; MaxNodes: 64
; UnixStartTime: 1100000000
; this free-form comment line is ignored
1 100 10 300 4 -1 1048576 4 600 -1 1 3 1 -1 1 1 -1 -1
2 160 -1 120 2 -1 -1 2 240 -1 1 5 1 -1 1 1 -1 -1
3 40 0 60 1 -1 -1 1 60 -1 0 3 1 -1 1 1 -1 -1
4 220 5 -1 8 -1 -1 8 900 -1 5 7 2 -1 1 1 -1 -1
5 90 2 450 16 -1 2097152 16 600 -1 1 5 1 -1 1 1 -1 -1
6 300 1 500 4 -1 -1 8 800 2097152 1 3 1 -1 1 1 -1 -1
7 360 0 200 2 -1 1048576 2 400 -1 1 5 1 -1 1 1 -1 -1
";

    #[test]
    fn header_directives_parse_case_insensitively() {
        let trace = parse_trace(SAMPLE).expect("parses");
        assert_eq!(trace.directive("maxnodes"), Some("64"));
        assert_eq!(trace.directive("Computer"), Some("Example Machine"));
        assert_eq!(trace.directive("UNIXSTARTTIME"), Some("1100000000"));
        assert_eq!(trace.max_nodes(), Some(64));
        assert_eq!(trace.jobs.len(), 7);
    }

    #[test]
    fn sentinel_fields_survive_and_fallbacks_apply() {
        let trace = parse_trace(SAMPLE).expect("parses");
        // Job 2 has -1 wait and no memory record.
        let j2 = &trace.jobs[1];
        assert_eq!(j2.wait_secs, -1);
        assert_eq!(j2.used_memory_kb, -1);
        assert_eq!(j2.procs(), Some(2));
        // Job 4 has -1 runtime but a requested time; cancelled, so unusable
        // anyway.
        let j4 = &trace.jobs[3];
        assert_eq!(j4.run_secs, -1);
        assert_eq!(j4.runtime_secs(), Some(900));
        assert!(!j4.is_usable(), "cancelled jobs are dropped");
    }

    #[test]
    fn conversion_drops_failed_sorts_and_normalizes() {
        let trace = parse_trace(SAMPLE).expect("parses");
        // Job 3 failed (status 0), job 4 cancelled (status 5) → 5 remain.
        let jobs = trace.to_jobs(0);
        assert_eq!(jobs.len(), 5);
        // Sorted by submit: job 5 (t=90) first, normalized to zero.
        assert_eq!(jobs[0].submit, SimTime::ZERO);
        assert_eq!(jobs[0].nodes, 16);
        assert_eq!(jobs[1].submit, SimTime::from_secs(10)); // 100 - 90
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id.0 as usize, i, "re-identified sequentially");
        }
        // Users factorized in first-appearance order: 5 → 0, 3 → 1.
        assert_eq!(jobs[0].user.0, 0);
        assert_eq!(jobs[1].user.0, 1);
        // Memory: job 5 records 2 GB/proc × 16 procs = 32 GB; job 2 records
        // none → DEFAULT_GB_PER_PROC × 2.
        assert_eq!(jobs[0].memory_gb, 32);
        assert_eq!(jobs[2].memory_gb, 2 * DEFAULT_GB_PER_PROC);
        // Walltime comes from the requested time.
        assert_eq!(jobs[0].walltime, SimDuration::from_secs(600));
    }

    #[test]
    fn per_node_demand_maps_requested_fields_with_sentinel_fallbacks() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let jobs = trace.to_jobs(0);
        // Job 6: 8 requested processors packed onto 4 allocated nodes → 2
        // cores per node; requested memory (2 GB per processor) becomes
        // both the per-node demand and — with no used-memory record — the
        // aggregate.
        let j6 = &jobs[3];
        assert_eq!(j6.nodes, 4);
        assert_eq!(j6.per_node, ResourceVec::new(2, 0, 2, 0));
        assert_eq!(j6.memory_gb, 8);
        // Job 7: requested memory is a -1 sentinel → per-node demand falls
        // back to used memory; requested == allocated → no core demand.
        let j7 = &jobs[4];
        assert_eq!(j7.per_node, ResourceVec::new(0, 0, 1, 0));
        assert_eq!(j7.memory_gb, 2);
        // Job 2 records neither memory field → no per-node demand at all.
        assert!(jobs[2].per_node.is_zero());
        assert_eq!(jobs[2].memory_gb, 2 * DEFAULT_GB_PER_PROC);
    }

    #[test]
    fn limit_truncates_after_sorting() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let jobs = trace.to_jobs(2);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].nodes, 16, "earliest submit survives the cut");
    }

    #[test]
    fn malformed_lines_report_location() {
        let err = parse_trace("1 2 3\n").unwrap_err();
        match &err {
            WorkloadError::Parse { location, message } => {
                assert_eq!(location, "line 1");
                assert!(message.contains("18 fields"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }

        let bad_token = SAMPLE.replace("5 90 2 450", "5 90 2 banana");
        let err = parse_trace(&bad_token).unwrap_err();
        match &err {
            WorkloadError::Parse { location, message } => {
                assert!(location.contains("field 4"), "{location}");
                assert!(message.contains("banana"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_finite_and_out_of_range_numbers_are_rejected() {
        for bad in ["nan", "inf", "-inf", "1e300"] {
            let line = format!("1 0 0 100 4 -1 -1 4 200 -1 {bad} 1 1 -1 1 1 -1 -1\n");
            let err = parse_trace(&line).unwrap_err();
            match &err {
                WorkloadError::Parse { location, message } => {
                    assert!(location.contains("field 11"), "{bad}: {location}");
                    assert!(message.contains(bad), "{bad}: {message}");
                }
                other => panic!("{bad}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn walltime_is_padded_to_the_actual_runtime_on_overruns() {
        // run (900) exceeds requested (600): the job overran and was killed
        // late. Schedulers must never see duration > walltime.
        let line = "1 0 0 900 4 -1 -1 4 600 -1 1 1 1 -1 1 1 -1 -1\n";
        let jobs = parse_trace(line).expect("parses").to_jobs(0);
        assert_eq!(jobs[0].duration, SimDuration::from_secs(900));
        assert_eq!(jobs[0].walltime, SimDuration::from_secs(900));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let re = parse_trace(&trace.to_string()).expect("re-parses");
        assert_eq!(re, trace);
    }

    #[test]
    fn derived_cluster_fits_every_usable_job() {
        let trace = parse_trace(SAMPLE).expect("parses");
        let cluster = trace.cluster();
        assert_eq!(cluster.nodes, 64, "header MaxNodes wins");
        for j in trace.to_jobs(0) {
            assert!(j.nodes <= cluster.nodes);
            assert!(j.memory_gb <= cluster.memory_gb);
        }
    }

    #[test]
    fn headerless_trace_sizes_cluster_from_widest_job() {
        let text = "7 0 0 100 12 -1 -1 12 100 -1 1 1 1 -1 1 1 -1 -1\n";
        let trace = parse_trace(text).expect("parses");
        assert_eq!(trace.max_nodes(), None);
        assert_eq!(trace.cluster().nodes, 12);
    }

    #[test]
    fn missing_file_reports_io_error() {
        match load_trace("/definitely/not/here.swf") {
            Err(WorkloadError::Io { path, .. }) => assert!(path.ends_with("here.swf")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_trace_converts_to_no_jobs() {
        let trace = parse_trace("; Version: 2.2\n").expect("parses");
        assert!(trace.to_jobs(0).is_empty());
    }
}
