//! Seeded synthetic **Polaris-scale SWF trace generator** — the scale
//! substrate behind the `polaris_synth` scenario.
//!
//! Real facility logs run to hundreds of thousands of jobs (ALCF's
//! Polaris/Aurora archives), far too large to ship as fixtures. This
//! module generates a statistically Polaris-like job stream *as raw SWF
//! rows* ([`SwfJob`]) from a seed, so CI and benches can exercise
//! million-job parses and replays without a giant file:
//!
//! * heavy-tailed node counts up to the machine width (560 nodes),
//!   log-normal runtimes, Poisson-ish submission gaps calibrated to put
//!   offered load slightly above capacity (so queueing occurs);
//! * realistic archive noise: ~12 % failed/cancelled rows, `-1` sentinel
//!   fields, occasional out-of-order submissions, float-formatted
//!   integral fields — everything the streaming parser and the §5-style
//!   preprocessing pipeline must cope with at scale;
//! * three coordinated forms of the same seeded stream:
//!   [`polaris_synth_rows`] (raw rows), [`polaris_synth_text`] (SWF text,
//!   for parser differential tests), and [`polaris_synth_workload`]
//!   (simulator-ready jobs). Parsing the text form and converting it
//!   yields **exactly** the workload form, because all three share one
//!   generator and the SWF conversion core.
//!
//! The scenario registry exposes this as the `polaris_synth` builtin and
//! the dynamic `polaris_synth:<n>` name form (e.g. `polaris_synth:1000000`),
//! mirroring `swf:<path>`.

use rsched_cluster::JobSpec;
use rsched_simkit::dist::{Categorical, Clamped, Exponential, LogNormal, Sample, Uniform};
use rsched_simkit::rng::{Rng, SeedTree, Xoshiro256PlusPlus};

use crate::polaris::POLARIS_NODES;
use crate::swf::{jobs_from_rows, SwfJob, SwfTrace};

/// An infinite, seeded stream of raw Polaris-like SWF rows.
///
/// About 87 % of rows are usable (completed, with runtime and width);
/// the rest are failed (status 0), cancelled (status 5), or missing both
/// runtime fields — archive noise the conversion pipeline must drop.
/// Submissions advance on an exponential clock with occasional backdated
/// rows, so the stream is *almost* but not exactly submit-sorted, like a
/// mid-stream sample of a production log.
#[derive(Debug)]
pub struct SwfSynth {
    rng: Xoshiro256PlusPlus,
    next_id: i64,
    clock_secs: i64,
    widths: Categorical,
    duration: Clamped<LogNormal>,
    gap: Exponential,
}

/// Node-count classes `(lo, hi)`, heavy-tailed toward narrow jobs.
const NODE_CLASSES: [(u32, u32); 8] = [
    (1, 1),
    (2, 2),
    (3, 8),
    (9, 24),
    (25, 64),
    (65, 128),
    (129, 256),
    (257, POLARIS_NODES),
];

impl SwfSynth {
    /// A fresh stream for `seed`. Identical seeds yield identical streams.
    pub fn new(seed: u64) -> Self {
        let tree = SeedTree::new(seed).subtree("polaris_synth", 0);
        SwfSynth {
            rng: tree.rng("rows", 0),
            next_id: 1,
            clock_secs: 0,
            widths: Categorical::new(&[0.28, 0.18, 0.16, 0.13, 0.11, 0.08, 0.04, 0.02]),
            // Median 30 min, long tail to a day; with the ~160 s mean
            // submission gap this offers slightly more node-seconds than
            // the 560-node machine has, so queues form.
            duration: Clamped::new(LogNormal::from_median(1800.0, 1.1), 60.0, 86_400.0),
            gap: Exponential::with_mean(160.0),
        }
    }
}

impl Iterator for SwfSynth {
    type Item = SwfJob;

    fn next(&mut self) -> Option<SwfJob> {
        let rng = &mut self.rng;
        self.clock_secs += self.gap.sample(rng) as i64;
        let id = self.next_id;
        self.next_id += 1;

        // ~20 % of rows are recorded late: the submit field is backdated,
        // so consumers must sort (the conversion pipeline does).
        let submit = if rng.gen_bool(0.2) {
            (self.clock_secs - Uniform::new(0.0, 900.0).sample(rng) as i64).max(0)
        } else {
            self.clock_secs
        };

        let class = NODE_CLASSES[self.widths.sample_index(rng)];
        let nodes = rng.gen_range_inclusive(class.0 as u64, class.1 as u64) as i64;
        let runtime = self.duration.sample(rng) as i64;
        // Requested walltime: padded runtime, rounded up to 15 min.
        let padded = (runtime as f64 * Uniform::new(1.1, 2.2).sample(rng)) as i64;
        let requested_secs = (padded.max(900) + 899) / 900 * 900;

        // Archive noise: 8 % failed, 4 % cancelled, 1 % with neither
        // runtime field recorded (unusable even though "completed").
        let status = if rng.gen_bool(0.08) {
            0
        } else if rng.gen_bool(0.04) {
            5
        } else {
            1
        };
        let runtime_missing = rng.gen_bool(0.01);
        let (run_secs, req_secs) = if runtime_missing {
            (-1, -1)
        } else if rng.gen_bool(0.03) {
            // Runtime lost but the request survives → fallback path.
            (-1, requested_secs)
        } else {
            (runtime, requested_secs)
        };

        // Memory: mostly unrecorded (→ the 2 GB/proc default); ~30 %
        // record 1–4 GB per processor, always feasible on 512 GB nodes.
        let used_memory_kb = if rng.gen_bool(0.3) {
            rng.gen_range_inclusive(1, 4) as i64 * 1024 * 1024
        } else {
            -1
        };
        let requested_memory_kb = if rng.gen_bool(0.1) {
            rng.gen_range_inclusive(1, 4) as i64 * 1024 * 1024
        } else {
            -1
        };
        // ~10 % pack two ranks per node (requested > allocated procs).
        let requested_procs = if rng.gen_bool(0.1) { nodes * 2 } else { nodes };
        // ~10 % record an average CPU time, as a one-decimal float.
        let avg_cpu_secs = if run_secs > 0 && rng.gen_bool(0.1) {
            ((run_secs as f64 * Uniform::new(0.5, 1.0).sample(rng)) * 10.0).round() / 10.0
        } else {
            -1.0
        };

        // A zipf-ish user population of 40, groups derived from users.
        let user = (rng.unit_f64().powi(3) * 40.0) as i64;
        Some(SwfJob {
            job_id: id,
            submit_secs: submit,
            wait_secs: -1,
            run_secs,
            allocated_procs: nodes,
            avg_cpu_secs,
            used_memory_kb,
            requested_procs,
            requested_secs: req_secs,
            requested_memory_kb,
            status,
            user,
            group: user % 7,
            executable: -1,
            queue: 1,
            partition: 1,
            preceding_job: -1,
            think_secs: -1,
        })
    }
}

/// The raw-row prefix of the seeded stream containing exactly `n` usable
/// rows (the stream is cut right after the `n`-th usable row). Converting
/// these rows — eagerly or streaming — yields [`polaris_synth_workload`].
pub fn polaris_synth_rows(n: usize, seed: u64) -> Vec<SwfJob> {
    bounded_rows(n, seed).collect()
}

/// The same prefix rendered as SWF text (header directives + one line per
/// row), for parser-level differential tests and CI smokes that need real
/// bytes without a fixture. `SwfTrace::parse` of the output reproduces
/// [`polaris_synth_rows`].
pub fn polaris_synth_text(n: usize, seed: u64) -> String {
    SwfTrace {
        directives: vec![
            ("Version".to_string(), "2.2".to_string()),
            ("Computer".to_string(), "Polaris (synthetic)".to_string()),
            ("MaxNodes".to_string(), POLARIS_NODES.to_string()),
        ],
        jobs: polaris_synth_rows(n, seed),
    }
    .to_string()
}

/// Exactly `n` simulator-ready jobs from the seeded stream, through the
/// same conversion core as every SWF path (drop unusable, sort by
/// `(submit, id)`, normalize, factorize). All jobs fit the Polaris
/// configuration (560 nodes × 512 GB).
pub fn polaris_synth_workload(n: usize, seed: u64) -> Vec<JobSpec> {
    jobs_from_rows(bounded_rows(n, seed), n)
}

/// The stream cut right after its `n`-th usable row.
fn bounded_rows(n: usize, seed: u64) -> impl Iterator<Item = SwfJob> {
    let mut usable = 0usize;
    SwfSynth::new(seed).take_while(move |row| {
        if usable >= n {
            return false;
        }
        if row.is_usable() {
            usable += 1;
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::ClusterConfig;
    use rsched_simkit::SimTime;

    #[test]
    fn workload_has_exactly_n_jobs_and_fits_polaris() {
        let jobs = polaris_synth_workload(500, 7);
        assert_eq!(jobs.len(), 500);
        let config = ClusterConfig::polaris();
        for j in &jobs {
            assert!(j.nodes >= 1 && j.nodes <= config.nodes);
            assert!(j.memory_gb <= config.memory_gb);
            assert!(j.walltime >= j.duration);
            assert!(j.per_node.memory_gb <= crate::polaris::POLARIS_GB_PER_NODE);
        }
        assert_eq!(jobs[0].submit, SimTime::ZERO, "normalized to origin");
        for pair in jobs.windows(2) {
            assert!(pair[0].submit <= pair[1].submit, "sorted by submission");
        }
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        assert_eq!(
            polaris_synth_workload(200, 42),
            polaris_synth_workload(200, 42)
        );
        assert_ne!(
            polaris_synth_workload(200, 42),
            polaris_synth_workload(200, 43)
        );
    }

    #[test]
    fn raw_stream_carries_archive_noise() {
        let rows = polaris_synth_rows(1000, 3);
        let failed = rows.iter().filter(|r| r.status == 0).count();
        let cancelled = rows.iter().filter(|r| r.status == 5).count();
        let sentinels = rows.iter().filter(|r| r.used_memory_kb == -1).count();
        let backdated = rows
            .windows(2)
            .filter(|w| w[1].submit_secs < w[0].submit_secs)
            .count();
        assert!(failed > 0, "failed rows present");
        assert!(cancelled > 0, "cancelled rows present");
        assert!(sentinels > 0, "-1 sentinels present");
        assert!(backdated > 0, "out-of-order submissions present");
        assert_eq!(rows.iter().filter(|r| r.is_usable()).count(), 1000);
    }

    #[test]
    fn text_form_parses_back_to_the_same_rows_and_workload() {
        let n = 300;
        let text = polaris_synth_text(n, 11);
        let trace = SwfTrace::parse(&text).expect("round-trips");
        assert_eq!(trace.jobs, polaris_synth_rows(n, 11));
        assert_eq!(trace.max_nodes(), Some(POLARIS_NODES));
        assert_eq!(trace.to_jobs(n), polaris_synth_workload(n, 11));
    }

    #[test]
    fn larger_n_extends_the_same_prefix() {
        let small = polaris_synth_rows(100, 5);
        let large = polaris_synth_rows(200, 5);
        assert_eq!(&large[..small.len()], &small[..], "prefix-stable");
    }
}
