//! Synthetic scenario generation: the seven benchmark scenarios of paper
//! §3.1 (with the paper's exact distribution parameters where given and
//! documented calibrations where the paper specifies only the qualitative
//! pattern) plus five extended scenarios probing patterns the paper's set
//! leaves uncovered.
//!
//! Scenarios are addressed **by name** through the
//! [`ScenarioRegistry`](crate::ScenarioRegistry); this module holds the
//! builtin definitions and the deterministic generation core. The legacy
//! enum-addressed path lives in [`crate::compat`].

use rsched_cluster::{ClusterConfig, JobSpec, NodeClass, ResourceVec};
use rsched_simkit::dist::{Categorical, Clamped, Gamma, LogNormal, Sample, Uniform};
use rsched_simkit::rng::{Rng, SeedTree};
use rsched_simkit::{SimDuration, SimTime};

use crate::arrivals::{ArrivalMode, ArrivalProcess};
use crate::error::WorkloadError;
use crate::registry::ScenarioContext;
use crate::users::UserModel;

/// A generated workload instance: the jobs plus provenance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The scenario name that produced it — a registry name such as
    /// `heterogeneous_mix`, or `swf:<path>` for an ingested trace.
    pub scenario: String,
    /// The jobs, ordered by id (== submission order).
    pub jobs: Vec<JobSpec>,
    /// Static or dynamic arrivals.
    pub mode: ArrivalMode,
    /// Seed it was generated from.
    pub seed: u64,
}

impl Workload {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if no jobs were generated.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sanity-check every job against a machine configuration.
    pub fn validate(&self, config: ClusterConfig) -> Result<(), WorkloadError> {
        for j in &self.jobs {
            let fail = |message: String| {
                Err(WorkloadError::Validation {
                    job: j.id.0,
                    message,
                })
            };
            if j.nodes == 0 {
                return fail("requests zero nodes".to_string());
            }
            if j.nodes > config.nodes {
                return fail(format!(
                    "requests {} nodes > capacity {}",
                    j.nodes, config.nodes
                ));
            }
            if j.memory_gb > config.memory_gb {
                return fail(format!(
                    "requests {} GB > capacity {}",
                    j.memory_gb, config.memory_gb
                ));
            }
            if j.duration.is_zero() {
                return fail("has zero duration".to_string());
            }
        }
        Ok(())
    }
}

/// The raw per-job shape a scenario produces, before arrival times and user
/// metadata are attached.
pub(crate) struct JobShape {
    pub(crate) duration_secs: f64,
    pub(crate) nodes: u32,
    pub(crate) memory_gb: u64,
    /// Extended per-node demand (GPUs, per-node memory, burst-buffer
    /// slots). [`ResourceVec::ZERO`] for scalar jobs; ignored entirely on
    /// flat machines, so scalar scenarios are unaffected.
    pub(crate) per_node: ResourceVec,
    /// Node-class pin, if the job only runs on one class.
    pub(crate) class: Option<NodeClass>,
}

impl JobShape {
    /// A scalar (flat-machine) shape: no extended demand, no class pin.
    pub(crate) fn scalar(duration_secs: f64, nodes: u32, memory_gb: u64) -> Self {
        JobShape {
            duration_secs,
            nodes,
            memory_gb,
            per_node: ResourceVec::ZERO,
            class: None,
        }
    }
}

/// A builtin synthetic scenario: name, presentation metadata, and the two
/// deterministic ingredients (arrival process + per-job shape sampler).
pub(crate) struct BuiltinScenario {
    /// Registry name (also the seed-derivation label, so renaming a slug
    /// changes every workload it generates).
    pub(crate) slug: &'static str,
    /// Human-readable name matching the paper's figures.
    pub(crate) title: &'static str,
    /// One-line description for scenario listings.
    pub(crate) description: &'static str,
    /// The arrival process used in dynamic mode.
    pub(crate) arrival: fn() -> ArrivalProcess,
    /// Samples the shape of job `index` out of `n`.
    pub(crate) shape: fn(usize, usize, &mut dyn Rng) -> JobShape,
}

/// The builtin synthetic scenarios: the paper's seven (in presentation
/// order) followed by the five extended ones. All are calibrated to the
/// paper's 256-node / 2048 GB machine; the two class-aware ones
/// (`gpu_skewed_hetmix`, `bigmem_burst`) additionally fit the `mixed_256`
/// topology.
pub(crate) static BUILTIN_SCENARIOS: [BuiltinScenario; 12] = [
    BuiltinScenario {
        slug: "homogeneous_short",
        title: "Homogeneous Short",
        description: "Uniform 30-120 s jobs with 2 nodes / 4 GB - lightweight CI/test load.",
        arrival: || ArrivalProcess::Poisson {
            mean_interarrival_secs: 5.0,
        },
        shape: |_, _, rng| JobShape::scalar(Uniform::new(30.0, 120.0).sample(rng), 2, 4),
    },
    BuiltinScenario {
        slug: "heterogeneous_mix",
        title: "Heterogeneous Mix",
        description: "Gamma(1.5, 300) runtimes with varied resources - production mix.",
        arrival: || ArrivalProcess::Poisson {
            mean_interarrival_secs: 30.0,
        },
        shape: |_, _, rng| heterogeneous_mix_shape(rng),
    },
    BuiltinScenario {
        slug: "long_job_dominant",
        title: "Long-Job Dominant",
        description: "20% extremely long 128-node jobs among short ones - convoy-effect probe.",
        arrival: || ArrivalProcess::Poisson {
            mean_interarrival_secs: 60.0,
        },
        // Exactly ~20 % long jobs, deterministically interleaved so every
        // instance size keeps the paper's ratio.
        shape: |index, _, _| {
            if index.is_multiple_of(5) {
                JobShape::scalar(50_000.0, 128, 256)
            } else {
                JobShape::scalar(500.0, 2, 4)
            }
        },
    },
    BuiltinScenario {
        slug: "high_parallelism",
        title: "High Parallelism",
        description: "Large parallel jobs (64-256 nodes) with Gamma walltimes.",
        arrival: || ArrivalProcess::Poisson {
            mean_interarrival_secs: 120.0,
        },
        shape: |_, _, rng| {
            let nodes = *[64u32, 96, 128, 192, 256]
                .get(Categorical::new(&[0.3, 0.25, 0.25, 0.12, 0.08]).sample_index(rng))
                .expect("index in range");
            // 2 GB per node keeps even a 256-node job within 2048 GB.
            JobShape::scalar(
                Clamped::new(Gamma::new(2.0, 500.0), 60.0, 7200.0).sample(rng),
                nodes,
                nodes as u64 * 2,
            )
        },
    },
    BuiltinScenario {
        slug: "resource_sparse",
        title: "Resource Sparse",
        description: "Lightweight 1-node, <8 GB, 30-300 s jobs - sparse workload.",
        arrival: || ArrivalProcess::Poisson {
            mean_interarrival_secs: 10.0,
        },
        shape: |_, _, rng| {
            JobShape::scalar(
                Uniform::new(30.0, 300.0).sample(rng),
                1,
                rng.gen_range_inclusive(1, 7),
            )
        },
    },
    BuiltinScenario {
        slug: "bursty_idle",
        title: "Bursty + Idle",
        description: "Alternating short/long jobs submitted in bursts with idle gaps.",
        arrival: || ArrivalProcess::Bursty {
            burst_size: 10,
            within_burst_mean_secs: 5.0,
            idle_gap_mean_secs: 600.0,
        },
        // Alternate short and long jobs with modest demands (§3.1). The
        // long jobs of successive bursts overlap, so several bursts in,
        // the machine saturates and responsiveness differences appear.
        shape: |index, _, rng| {
            if index.is_multiple_of(2) {
                JobShape::scalar(Uniform::new(60.0, 180.0).sample(rng), 2, 4)
            } else {
                JobShape::scalar(Uniform::new(3600.0, 7200.0).sample(rng), 24, 48)
            }
        },
    },
    BuiltinScenario {
        slug: "adversarial",
        title: "Adversarial",
        description: "One 128-node / 100000 s blocker followed by many 1-node / 60 s jobs.",
        arrival: || ArrivalProcess::BlockerThenFlood {
            flood_mean_secs: 10.0,
        },
        shape: |index, _, _| {
            if index == 0 {
                JobShape::scalar(100_000.0, 128, 512)
            } else {
                JobShape::scalar(60.0, 1, 2)
            }
        },
    },
    // ---- extended scenarios (beyond the paper's seven) -------------------
    BuiltinScenario {
        slug: "diurnal_wave",
        title: "Diurnal Wave",
        description: "Production-mix jobs under a day/night sinusoidal arrival rate.",
        arrival: || ArrivalProcess::Diurnal {
            period_secs: 86_400.0,
            peak_mean_secs: 15.0,
            trough_mean_secs: 900.0,
        },
        shape: |_, _, rng| heterogeneous_mix_shape(rng),
    },
    BuiltinScenario {
        slug: "wide_job_convoy",
        title: "Wide-Job Convoy",
        description: "Waves of 96-192-node jobs ahead of narrow ones - backfill stress test.",
        arrival: || ArrivalProcess::Bursty {
            burst_size: 16,
            within_burst_mean_secs: 10.0,
            idle_gap_mean_secs: 1800.0,
        },
        // Each 16-job wave leads with four wide jobs; the narrow tail can
        // only run promptly if the scheduler flows around the convoy.
        shape: |index, _, rng| {
            if index % 16 < 4 {
                let nodes = rng.gen_range_inclusive(96, 192) as u32;
                JobShape::scalar(
                    Uniform::new(3600.0, 10_800.0).sample(rng),
                    nodes,
                    nodes as u64 * 4,
                )
            } else {
                let nodes = rng.gen_range_inclusive(1, 4) as u32;
                JobShape::scalar(
                    Uniform::new(120.0, 1200.0).sample(rng),
                    nodes,
                    nodes as u64 * 2,
                )
            }
        },
    },
    BuiltinScenario {
        slug: "gpu_skewed_hetmix",
        title: "GPU-Skewed Hetmix",
        description: "35% accelerator jobs: 4 GPUs + 32-64 GB per node, gpu-class pinned.",
        arrival: || ArrivalProcess::Poisson {
            mean_interarrival_secs: 45.0,
        },
        shape: |_, _, rng| {
            if rng.gen_bool(0.35) {
                // Accelerator-style: narrow, memory-hungry, long, and
                // genuinely GPU-demanding — 4 GPUs per node, pinned to the
                // gpu class on classed machines. The extended demand is
                // derived from values already drawn, so the scalar
                // projection (and every flat-cluster pin) is unchanged.
                let nodes = rng.gen_range_inclusive(1, 8) as u32;
                let per_node_gb = rng.gen_range_inclusive(32, 64);
                JobShape {
                    duration_secs: Clamped::new(Gamma::new(2.0, 1800.0), 300.0, 43_200.0)
                        .sample(rng),
                    nodes,
                    memory_gb: (nodes as u64 * per_node_gb).min(1024),
                    per_node: ResourceVec::new(0, 4, per_node_gb, 0),
                    class: Some(NodeClass::Gpu),
                }
            } else {
                let nodes = rng.gen_range_inclusive(2, 32) as u32;
                let per_node_gb = rng.gen_range_inclusive(1, 4);
                JobShape::scalar(
                    Clamped::new(Gamma::new(1.5, 300.0), 10.0, 20_000.0).sample(rng),
                    nodes,
                    nodes as u64 * per_node_gb,
                )
            }
        },
    },
    BuiltinScenario {
        slug: "long_tail",
        title: "Long-Tail Runtime",
        description: "Small jobs with log-normal runtimes spanning 4+ orders of magnitude.",
        arrival: || ArrivalProcess::Poisson {
            mean_interarrival_secs: 20.0,
        },
        shape: |_, _, rng| {
            let nodes = rng.gen_range_inclusive(1, 8) as u32;
            JobShape::scalar(
                Clamped::new(LogNormal::from_median(300.0, 2.0), 10.0, 150_000.0).sample(rng),
                nodes,
                nodes as u64 * 2,
            )
        },
    },
    BuiltinScenario {
        slug: "bigmem_burst",
        title: "BigMem Burst",
        description: "Bursts of 96-128 GB/node analytics jobs with burst-buffer staging.",
        arrival: || ArrivalProcess::Bursty {
            burst_size: 12,
            within_burst_mean_secs: 8.0,
            idle_gap_mean_secs: 900.0,
        },
        // Every third job is a large-memory analytics step that stages
        // through the burst buffer and pins to the bigmem class; the rest
        // are scalar filler. Aggregate memory tops out at 4 × 128 = 512 GB,
        // well inside the paper's 2048 GB flat machine, and the per-node
        // demand exactly saturates a mixed_256 bigmem node.
        shape: |index, _, rng| {
            if index.is_multiple_of(3) {
                let nodes = rng.gen_range_inclusive(1, 4) as u32;
                let per_node_gb = rng.gen_range_inclusive(96, 128);
                JobShape {
                    duration_secs: Clamped::new(Gamma::new(2.0, 1200.0), 300.0, 28_800.0)
                        .sample(rng),
                    nodes,
                    memory_gb: nodes as u64 * per_node_gb,
                    per_node: ResourceVec::new(0, 0, per_node_gb, 2),
                    class: Some(NodeClass::BigMem),
                }
            } else {
                let nodes = rng.gen_range_inclusive(1, 8) as u32;
                JobShape::scalar(
                    Uniform::new(120.0, 900.0).sample(rng),
                    nodes,
                    nodes as u64 * 2,
                )
            }
        },
    },
];

/// Look up a builtin synthetic scenario by slug.
pub(crate) fn lookup_builtin(slug: &str) -> Option<&'static BuiltinScenario> {
    BUILTIN_SCENARIOS.iter().find(|s| s.slug == slug)
}

/// Generate one workload instance from a builtin definition.
///
/// Determinism: the `(slug, n, mode, seed)` tuple fully determines the
/// output; shapes, arrivals and users draw from independent derived streams
/// so changing `n` does not reshuffle earlier jobs. The seed tree is keyed
/// by the scenario slug, which is why the name-addressed registry path is
/// bit-identical to the legacy enum-addressed one.
pub(crate) fn generate_builtin(spec: &BuiltinScenario, ctx: &ScenarioContext) -> Workload {
    let n = ctx.n;
    let tree = SeedTree::new(ctx.seed).subtree(spec.slug, 0);
    let mut shape_rng = tree.rng("shapes", 0);
    let mut arrival_rng = tree.rng("arrivals", 0);
    let mut user_rng = tree.rng("users", 0);

    let arrivals = match ctx.mode {
        ArrivalMode::Static => vec![SimTime::ZERO; n],
        ArrivalMode::Dynamic => (spec.arrival)().generate(n, &mut arrival_rng),
    };
    let users = UserModel::for_job_count(n);

    let jobs = (0..n)
        .map(|i| {
            let shape = (spec.shape)(i, n, &mut shape_rng);
            let (user, group) = users.sample(&mut user_rng);
            let mut job = JobSpec::new(
                i as u32,
                user,
                arrivals[i],
                SimDuration::from_secs_f64(shape.duration_secs.max(1.0)),
                shape.nodes,
                shape.memory_gb,
            )
            .with_group(group)
            .with_per_node(shape.per_node);
            if let Some(class) = shape.class {
                job = job.with_class(class);
            }
            job
        })
        .collect();

    let w = Workload {
        scenario: spec.slug.to_string(),
        jobs,
        mode: ctx.mode,
        seed: ctx.seed,
    };
    // Builtin synthetic scenarios are calibrated to the paper's machine.
    debug_assert!(w.validate(ClusterConfig::paper_default()).is_ok());
    w
}

/// Varied runtimes and resources "reflecting realistic production
/// environments". Node counts follow a heavy-tailed categorical mix with
/// memory correlated to node count; runtimes are the paper's
/// Gamma(1.5, 300).
fn heterogeneous_mix_shape(rng: &mut dyn Rng) -> JobShape {
    let duration = Clamped::new(Gamma::new(1.5, 300.0), 10.0, 20_000.0).sample(rng);
    let class = Categorical::new(&[0.45, 0.30, 0.17, 0.08]).sample_index(rng);
    let nodes = match class {
        0 => rng.gen_range_inclusive(1, 4) as u32,
        1 => rng.gen_range_inclusive(8, 32) as u32,
        2 => rng.gen_range_inclusive(48, 128) as u32,
        _ => rng.gen_range_inclusive(160, 256) as u32,
    };
    let per_node_gb = *[1u64, 2, 4, 8]
        .get(Categorical::new(&[0.3, 0.35, 0.25, 0.1]).sample_index(rng))
        .expect("index in range");
    JobShape::scalar(duration, nodes, (nodes as u64 * per_node_gb).min(2048))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::builtins;

    fn gen(slug: &str, n: usize) -> Workload {
        builtins()
            .generate(
                slug,
                &ScenarioContext::new(n)
                    .with_mode(ArrivalMode::Dynamic)
                    .with_seed(42),
            )
            .expect("builtin scenario")
    }

    #[test]
    fn all_scenarios_generate_valid_workloads() {
        for spec in &BUILTIN_SCENARIOS {
            for &n in &[10usize, 60, 100] {
                let w = builtins()
                    .generate(
                        spec.slug,
                        &ScenarioContext::new(n)
                            .with_mode(ArrivalMode::Dynamic)
                            .with_seed(1),
                    )
                    .expect("builtin scenario");
                assert_eq!(w.len(), n);
                w.validate(ClusterConfig::paper_default())
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.slug));
                // Ids are 0..n in submission order.
                for (i, j) in w.jobs.iter().enumerate() {
                    assert_eq!(j.id.0 as usize, i);
                }
                // Arrivals are non-decreasing.
                for pair in w.jobs.windows(2) {
                    assert!(pair[0].submit <= pair[1].submit);
                }
            }
        }
    }

    #[test]
    fn static_mode_all_at_zero() {
        for spec in &BUILTIN_SCENARIOS {
            let w = builtins()
                .generate(
                    spec.slug,
                    &ScenarioContext::new(20)
                        .with_mode(ArrivalMode::Static)
                        .with_seed(9),
                )
                .expect("builtin scenario");
            assert!(w.jobs.iter().all(|j| j.submit == SimTime::ZERO));
        }
    }

    #[test]
    fn homogeneous_short_matches_paper_parameters() {
        let w = gen("homogeneous_short", 100);
        for j in &w.jobs {
            let d = j.duration.as_secs_f64();
            assert!((30.0..=120.0).contains(&d), "duration {d}");
            assert_eq!(j.nodes, 2);
            assert_eq!(j.memory_gb, 4);
        }
    }

    #[test]
    fn long_job_dominant_ratio() {
        let w = gen("long_job_dominant", 100);
        let long = w
            .jobs
            .iter()
            .filter(|j| j.duration == SimDuration::from_secs(50_000))
            .count();
        assert_eq!(long, 20, "exactly 20% long jobs");
        let long_job = w
            .jobs
            .iter()
            .find(|j| j.duration == SimDuration::from_secs(50_000))
            .expect("exists");
        assert_eq!(long_job.nodes, 128);
        let short_job = w
            .jobs
            .iter()
            .find(|j| j.duration == SimDuration::from_secs(500))
            .expect("exists");
        assert_eq!(short_job.nodes, 2);
    }

    #[test]
    fn high_parallelism_node_range() {
        let w = gen("high_parallelism", 100);
        for j in &w.jobs {
            assert!((64..=256).contains(&j.nodes), "nodes {}", j.nodes);
            assert_eq!(j.memory_gb, j.nodes as u64 * 2);
        }
        assert!(
            w.jobs.iter().any(|j| j.nodes >= 192),
            "some very large jobs appear"
        );
    }

    #[test]
    fn resource_sparse_is_tiny() {
        let w = gen("resource_sparse", 100);
        for j in &w.jobs {
            assert_eq!(j.nodes, 1);
            assert!(j.memory_gb < 8, "memory {}", j.memory_gb);
            let d = j.duration.as_secs_f64();
            assert!((30.0..=300.0).contains(&d));
        }
    }

    #[test]
    fn bursty_idle_alternates() {
        let w = gen("bursty_idle", 40);
        for (i, j) in w.jobs.iter().enumerate() {
            if i % 2 == 0 {
                assert!(j.duration <= SimDuration::from_secs(180));
            } else {
                assert!(j.duration >= SimDuration::from_secs(1800));
            }
        }
    }

    #[test]
    fn adversarial_blocker_then_flood() {
        let w = gen("adversarial", 60);
        let blocker = &w.jobs[0];
        assert_eq!(blocker.nodes, 128);
        assert_eq!(blocker.duration, SimDuration::from_secs(100_000));
        assert_eq!(blocker.submit, SimTime::ZERO);
        for j in &w.jobs[1..] {
            assert_eq!(j.nodes, 1);
            assert_eq!(j.duration, SimDuration::from_secs(60));
        }
    }

    #[test]
    fn heterogeneous_mix_statistics() {
        let w = gen("heterogeneous_mix", 400);
        let mean_dur: f64 =
            w.jobs.iter().map(|j| j.duration.as_secs_f64()).sum::<f64>() / w.len() as f64;
        // Gamma(1.5, 300) has mean 450 (clamping perturbs slightly).
        assert!(
            (350.0..550.0).contains(&mean_dur),
            "mean duration {mean_dur}"
        );
        let small = w.jobs.iter().filter(|j| j.nodes <= 4).count();
        let large = w.jobs.iter().filter(|j| j.nodes >= 48).count();
        assert!(small > large, "node mix skews small");
        assert!(large > 0, "large jobs exist");
    }

    #[test]
    fn generation_is_deterministic() {
        for spec in &BUILTIN_SCENARIOS {
            let a = gen(spec.slug, 50);
            let b = gen(spec.slug, 50);
            assert_eq!(a.jobs, b.jobs, "{}", spec.slug);
            let c = builtins()
                .generate(
                    spec.slug,
                    &ScenarioContext::new(50)
                        .with_mode(ArrivalMode::Dynamic)
                        .with_seed(124),
                )
                .expect("builtin scenario");
            assert_ne!(a.jobs, c.jobs, "{} ignores seed", spec.slug);
        }
    }

    #[test]
    fn users_are_assigned_from_a_small_pool() {
        let w = gen("heterogeneous_mix", 60);
        let mut users: Vec<u32> = w.jobs.iter().map(|j| j.user.0).collect();
        users.sort_unstable();
        users.dedup();
        assert!(users.len() >= 2, "multiple users");
        assert!(users.len() <= 10, "bounded user pool");
    }

    #[test]
    fn wide_job_convoy_leads_each_wave_with_wide_jobs() {
        let w = gen("wide_job_convoy", 48);
        for (i, j) in w.jobs.iter().enumerate() {
            if i % 16 < 4 {
                assert!((96..=192).contains(&j.nodes), "job {i}: {}", j.nodes);
            } else {
                assert!(j.nodes <= 4, "job {i}: {}", j.nodes);
            }
        }
    }

    #[test]
    fn gpu_skewed_hetmix_has_memory_hungry_minority() {
        let w = gen("gpu_skewed_hetmix", 200);
        let hungry = w
            .jobs
            .iter()
            .filter(|j| j.memory_gb >= j.nodes as u64 * 32)
            .count();
        let frac = hungry as f64 / w.len() as f64;
        assert!((0.2..=0.5).contains(&frac), "memory-hungry fraction {frac}");
    }

    #[test]
    fn gpu_skewed_hetmix_accelerator_jobs_are_gpu_demanding() {
        let w = gen("gpu_skewed_hetmix", 200);
        let mut accel = 0usize;
        for j in &w.jobs {
            if j.class == Some(NodeClass::Gpu) {
                accel += 1;
                assert_eq!(j.per_node.gpus, 4, "job {}", j.id.0);
                assert!(
                    (32..=64).contains(&j.per_node.memory_gb),
                    "job {}: {} GB/node",
                    j.id.0,
                    j.per_node.memory_gb
                );
                assert!(j.nodes <= 8);
                // Fits a mixed_256 gpu node (64 cores, 4 GPUs, 64 GB, 2 bb).
                assert!(ResourceVec::new(64, 4, 64, 2).dominates(&j.per_node));
            } else {
                assert_eq!(j.class, None);
                assert!(j.per_node.is_zero(), "scalar jobs carry no demand");
            }
        }
        let frac = accel as f64 / w.len() as f64;
        assert!((0.2..=0.5).contains(&frac), "accelerator fraction {frac}");
    }

    #[test]
    fn bigmem_burst_pins_analytics_jobs_to_the_bigmem_class() {
        let w = gen("bigmem_burst", 90);
        for (i, j) in w.jobs.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(j.class, Some(NodeClass::BigMem), "job {i}");
                assert!((96..=128).contains(&j.per_node.memory_gb), "job {i}");
                assert_eq!(j.per_node.bb_slots, 2);
                assert!(j.nodes <= 4, "fits the 16-node bigmem class");
                assert_eq!(j.memory_gb, j.nodes as u64 * j.per_node.memory_gb);
                // Fits a mixed_256 bigmem node (64 cores, 128 GB, 4 bb).
                assert!(ResourceVec::new(64, 0, 128, 4).dominates(&j.per_node));
            } else {
                assert_eq!(j.class, None, "job {i}");
                assert!(j.per_node.is_zero());
                assert!(j.nodes <= 8);
            }
        }
    }

    #[test]
    fn long_tail_spans_orders_of_magnitude() {
        let w = gen("long_tail", 300);
        let max = w
            .jobs
            .iter()
            .map(|j| j.duration.as_secs_f64())
            .fold(0.0, f64::max);
        let min = w
            .jobs
            .iter()
            .map(|j| j.duration.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 100.0, "tail spread {max}/{min}");
        for j in &w.jobs {
            assert!(j.nodes <= 8);
        }
    }

    #[test]
    fn validation_reports_through_workload_error() {
        let mut w = gen("homogeneous_short", 4);
        w.jobs[2].nodes = 100_000;
        let err = w.validate(ClusterConfig::paper_default()).unwrap_err();
        match &err {
            WorkloadError::Validation { job, message } => {
                assert_eq!(*job, 2);
                assert!(message.contains("nodes"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("job 2"));
    }
}
