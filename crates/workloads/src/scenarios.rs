//! The seven benchmark scenarios of paper §3.1, with the paper's exact
//! distribution parameters where given and documented calibrations where
//! the paper specifies only the qualitative pattern (arrival rates, memory
//! mixes).

use rsched_cluster::{ClusterConfig, JobSpec};
use rsched_simkit::dist::{Categorical, Clamped, Gamma, Sample, Uniform};
use rsched_simkit::rng::{Rng, SeedTree};
use rsched_simkit::{SimDuration, SimTime};

use crate::arrivals::{ArrivalMode, ArrivalProcess};
use crate::users::UserModel;

/// One of the paper's seven workload scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Uniform 30–120 s jobs with 2 nodes / 4 GB — lightweight CI/test.
    HomogeneousShort,
    /// Gamma(1.5, 300) runtimes with varied resources — production mix.
    HeterogeneousMix,
    /// 20 % extremely long jobs (50 000 s, 128 nodes) among short jobs
    /// (500 s, 2 nodes) — convoy-effect probe.
    LongJobDominant,
    /// Large parallel jobs (64–256 nodes), Gamma walltimes — tightly
    /// coupled simulations.
    HighParallelism,
    /// Lightweight 1-node, <8 GB, 30–300 s jobs — sparse workload.
    ResourceSparse,
    /// Alternating short/long jobs submitted in bursts with idle gaps.
    BurstyIdle,
    /// One large blocking job (128 nodes, 100 000 s) followed by many
    /// small jobs (1 node, 60 s).
    Adversarial,
}

impl ScenarioKind {
    /// All seven scenarios, in the paper's presentation order.
    pub fn all() -> [ScenarioKind; 7] {
        [
            ScenarioKind::HomogeneousShort,
            ScenarioKind::HeterogeneousMix,
            ScenarioKind::LongJobDominant,
            ScenarioKind::HighParallelism,
            ScenarioKind::ResourceSparse,
            ScenarioKind::BurstyIdle,
            ScenarioKind::Adversarial,
        ]
    }

    /// The six scenarios shown in Figure 3 (Heterogeneous Mix is covered by
    /// the scalability analysis of §3.6 instead).
    pub fn figure3() -> [ScenarioKind; 6] {
        [
            ScenarioKind::HomogeneousShort,
            ScenarioKind::LongJobDominant,
            ScenarioKind::HighParallelism,
            ScenarioKind::ResourceSparse,
            ScenarioKind::BurstyIdle,
            ScenarioKind::Adversarial,
        ]
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::HomogeneousShort => "Homogeneous Short",
            ScenarioKind::HeterogeneousMix => "Heterogeneous Mix",
            ScenarioKind::LongJobDominant => "Long-Job Dominant",
            ScenarioKind::HighParallelism => "High Parallelism",
            ScenarioKind::ResourceSparse => "Resource Sparse",
            ScenarioKind::BurstyIdle => "Bursty + Idle",
            ScenarioKind::Adversarial => "Adversarial",
        }
    }

    /// Short machine-friendly slug for file names and seed derivation.
    pub fn slug(&self) -> &'static str {
        match self {
            ScenarioKind::HomogeneousShort => "homogeneous_short",
            ScenarioKind::HeterogeneousMix => "heterogeneous_mix",
            ScenarioKind::LongJobDominant => "long_job_dominant",
            ScenarioKind::HighParallelism => "high_parallelism",
            ScenarioKind::ResourceSparse => "resource_sparse",
            ScenarioKind::BurstyIdle => "bursty_idle",
            ScenarioKind::Adversarial => "adversarial",
        }
    }

    /// The arrival process used in dynamic mode. Rates are calibrated (the
    /// paper specifies "scenario-specific λ" without values) so that each
    /// scenario exhibits its intended contention signature on the paper's
    /// 256-node machine.
    pub fn arrival_process(&self) -> ArrivalProcess {
        match self {
            ScenarioKind::HomogeneousShort => ArrivalProcess::Poisson {
                mean_interarrival_secs: 5.0,
            },
            ScenarioKind::HeterogeneousMix => ArrivalProcess::Poisson {
                mean_interarrival_secs: 30.0,
            },
            ScenarioKind::LongJobDominant => ArrivalProcess::Poisson {
                mean_interarrival_secs: 60.0,
            },
            ScenarioKind::HighParallelism => ArrivalProcess::Poisson {
                mean_interarrival_secs: 120.0,
            },
            ScenarioKind::ResourceSparse => ArrivalProcess::Poisson {
                mean_interarrival_secs: 10.0,
            },
            ScenarioKind::BurstyIdle => ArrivalProcess::Bursty {
                burst_size: 10,
                within_burst_mean_secs: 5.0,
                idle_gap_mean_secs: 600.0,
            },
            ScenarioKind::Adversarial => ArrivalProcess::BlockerThenFlood {
                flood_mean_secs: 10.0,
            },
        }
    }
}

/// A generated workload instance: the jobs plus provenance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which scenario produced it.
    pub scenario: ScenarioKind,
    /// The jobs, ordered by id (== submission order).
    pub jobs: Vec<JobSpec>,
    /// Static or dynamic arrivals.
    pub mode: ArrivalMode,
    /// Seed it was generated from.
    pub seed: u64,
}

impl Workload {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if no jobs were generated.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sanity-check every job against a machine configuration.
    pub fn validate(&self, config: ClusterConfig) -> Result<(), String> {
        for j in &self.jobs {
            if j.nodes == 0 {
                return Err(format!("job {} requests zero nodes", j.id));
            }
            if j.nodes > config.nodes {
                return Err(format!(
                    "job {} requests {} nodes > capacity {}",
                    j.id, j.nodes, config.nodes
                ));
            }
            if j.memory_gb > config.memory_gb {
                return Err(format!(
                    "job {} requests {} GB > capacity {}",
                    j.id, j.memory_gb, config.memory_gb
                ));
            }
            if j.duration.is_zero() {
                return Err(format!("job {} has zero duration", j.id));
            }
        }
        Ok(())
    }
}

/// The raw per-job shape a scenario produces, before arrival times and user
/// metadata are attached.
struct JobShape {
    duration_secs: f64,
    nodes: u32,
    memory_gb: u64,
}

/// Generate one workload instance.
///
/// Determinism: the `(scenario, n, mode, seed)` tuple fully determines the
/// output; shapes, arrivals and users draw from independent derived streams
/// so changing `n` does not reshuffle earlier jobs.
pub fn generate(scenario: ScenarioKind, n: usize, mode: ArrivalMode, seed: u64) -> Workload {
    let tree = SeedTree::new(seed).subtree(scenario.slug(), 0);
    let mut shape_rng = tree.rng("shapes", 0);
    let mut arrival_rng = tree.rng("arrivals", 0);
    let mut user_rng = tree.rng("users", 0);

    let arrivals = match mode {
        ArrivalMode::Static => vec![SimTime::ZERO; n],
        ArrivalMode::Dynamic => scenario.arrival_process().generate(n, &mut arrival_rng),
    };
    let users = UserModel::for_job_count(n);

    let jobs = (0..n)
        .map(|i| {
            let shape = job_shape(scenario, i, n, &mut shape_rng);
            let (user, group) = users.sample(&mut user_rng);
            JobSpec::new(
                i as u32,
                user,
                arrivals[i],
                SimDuration::from_secs_f64(shape.duration_secs.max(1.0)),
                shape.nodes,
                shape.memory_gb,
            )
            .with_group(group)
        })
        .collect();

    let w = Workload {
        scenario,
        jobs,
        mode,
        seed,
    };
    debug_assert!(w.validate(ClusterConfig::paper_default()).is_ok());
    w
}

fn job_shape(scenario: ScenarioKind, index: usize, n: usize, rng: &mut dyn Rng) -> JobShape {
    match scenario {
        ScenarioKind::HomogeneousShort => JobShape {
            duration_secs: Uniform::new(30.0, 120.0).sample(rng),
            nodes: 2,
            memory_gb: 4,
        },
        ScenarioKind::HeterogeneousMix => heterogeneous_mix_shape(rng),
        ScenarioKind::LongJobDominant => {
            // Exactly ~20 % long jobs, deterministically interleaved so every
            // instance size keeps the paper's ratio.
            if index.is_multiple_of(5) {
                JobShape {
                    duration_secs: 50_000.0,
                    nodes: 128,
                    memory_gb: 256,
                }
            } else {
                JobShape {
                    duration_secs: 500.0,
                    nodes: 2,
                    memory_gb: 4,
                }
            }
        }
        ScenarioKind::HighParallelism => {
            let nodes = *[64u32, 96, 128, 192, 256]
                .get(Categorical::new(&[0.3, 0.25, 0.25, 0.12, 0.08]).sample_index(rng))
                .expect("index in range");
            JobShape {
                duration_secs: Clamped::new(Gamma::new(2.0, 500.0), 60.0, 7200.0).sample(rng),
                nodes,
                // 2 GB per node keeps even a 256-node job within 2048 GB.
                memory_gb: nodes as u64 * 2,
            }
        }
        ScenarioKind::ResourceSparse => JobShape {
            duration_secs: Uniform::new(30.0, 300.0).sample(rng),
            nodes: 1,
            memory_gb: rng.gen_range_inclusive(1, 7),
        },
        ScenarioKind::BurstyIdle => {
            // Alternate short and long jobs with modest demands (§3.1). The
            // long jobs of successive bursts overlap, so several bursts in,
            // the machine saturates and responsiveness differences appear.
            if index.is_multiple_of(2) {
                JobShape {
                    duration_secs: Uniform::new(60.0, 180.0).sample(rng),
                    nodes: 2,
                    memory_gb: 4,
                }
            } else {
                JobShape {
                    duration_secs: Uniform::new(3600.0, 7200.0).sample(rng),
                    nodes: 24,
                    memory_gb: 48,
                }
            }
        }
        ScenarioKind::Adversarial => {
            let _ = n;
            if index == 0 {
                JobShape {
                    duration_secs: 100_000.0,
                    nodes: 128,
                    memory_gb: 512,
                }
            } else {
                JobShape {
                    duration_secs: 60.0,
                    nodes: 1,
                    memory_gb: 2,
                }
            }
        }
    }
}

/// Varied runtimes and resources "reflecting realistic production
/// environments". Node counts follow a heavy-tailed categorical mix with
/// memory correlated to node count; runtimes are the paper's
/// Gamma(1.5, 300).
fn heterogeneous_mix_shape(rng: &mut dyn Rng) -> JobShape {
    let duration = Clamped::new(Gamma::new(1.5, 300.0), 10.0, 20_000.0).sample(rng);
    let class = Categorical::new(&[0.45, 0.30, 0.17, 0.08]).sample_index(rng);
    let nodes = match class {
        0 => rng.gen_range_inclusive(1, 4) as u32,
        1 => rng.gen_range_inclusive(8, 32) as u32,
        2 => rng.gen_range_inclusive(48, 128) as u32,
        _ => rng.gen_range_inclusive(160, 256) as u32,
    };
    let per_node_gb = *[1u64, 2, 4, 8]
        .get(Categorical::new(&[0.3, 0.35, 0.25, 0.1]).sample_index(rng))
        .expect("index in range");
    JobShape {
        duration_secs: duration,
        nodes,
        memory_gb: (nodes as u64 * per_node_gb).min(2048),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(kind: ScenarioKind, n: usize) -> Workload {
        generate(kind, n, ArrivalMode::Dynamic, 42)
    }

    #[test]
    fn all_scenarios_generate_valid_workloads() {
        for kind in ScenarioKind::all() {
            for &n in &[10usize, 60, 100] {
                let w = generate(kind, n, ArrivalMode::Dynamic, 1);
                assert_eq!(w.len(), n);
                w.validate(ClusterConfig::paper_default())
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
                // Ids are 0..n in submission order.
                for (i, j) in w.jobs.iter().enumerate() {
                    assert_eq!(j.id.0 as usize, i);
                }
                // Arrivals are non-decreasing.
                for pair in w.jobs.windows(2) {
                    assert!(pair[0].submit <= pair[1].submit);
                }
            }
        }
    }

    #[test]
    fn static_mode_all_at_zero() {
        for kind in ScenarioKind::all() {
            let w = generate(kind, 20, ArrivalMode::Static, 9);
            assert!(w.jobs.iter().all(|j| j.submit == SimTime::ZERO));
        }
    }

    #[test]
    fn homogeneous_short_matches_paper_parameters() {
        let w = gen(ScenarioKind::HomogeneousShort, 100);
        for j in &w.jobs {
            let d = j.duration.as_secs_f64();
            assert!((30.0..=120.0).contains(&d), "duration {d}");
            assert_eq!(j.nodes, 2);
            assert_eq!(j.memory_gb, 4);
        }
    }

    #[test]
    fn long_job_dominant_ratio() {
        let w = gen(ScenarioKind::LongJobDominant, 100);
        let long = w
            .jobs
            .iter()
            .filter(|j| j.duration == SimDuration::from_secs(50_000))
            .count();
        assert_eq!(long, 20, "exactly 20% long jobs");
        let long_job = w
            .jobs
            .iter()
            .find(|j| j.duration == SimDuration::from_secs(50_000))
            .expect("exists");
        assert_eq!(long_job.nodes, 128);
        let short_job = w
            .jobs
            .iter()
            .find(|j| j.duration == SimDuration::from_secs(500))
            .expect("exists");
        assert_eq!(short_job.nodes, 2);
    }

    #[test]
    fn high_parallelism_node_range() {
        let w = gen(ScenarioKind::HighParallelism, 100);
        for j in &w.jobs {
            assert!((64..=256).contains(&j.nodes), "nodes {}", j.nodes);
            assert_eq!(j.memory_gb, j.nodes as u64 * 2);
        }
        assert!(
            w.jobs.iter().any(|j| j.nodes >= 192),
            "some very large jobs appear"
        );
    }

    #[test]
    fn resource_sparse_is_tiny() {
        let w = gen(ScenarioKind::ResourceSparse, 100);
        for j in &w.jobs {
            assert_eq!(j.nodes, 1);
            assert!(j.memory_gb < 8, "memory {}", j.memory_gb);
            let d = j.duration.as_secs_f64();
            assert!((30.0..=300.0).contains(&d));
        }
    }

    #[test]
    fn bursty_idle_alternates() {
        let w = gen(ScenarioKind::BurstyIdle, 40);
        for (i, j) in w.jobs.iter().enumerate() {
            if i % 2 == 0 {
                assert!(j.duration <= SimDuration::from_secs(180));
            } else {
                assert!(j.duration >= SimDuration::from_secs(1800));
            }
        }
    }

    #[test]
    fn adversarial_blocker_then_flood() {
        let w = gen(ScenarioKind::Adversarial, 60);
        let blocker = &w.jobs[0];
        assert_eq!(blocker.nodes, 128);
        assert_eq!(blocker.duration, SimDuration::from_secs(100_000));
        assert_eq!(blocker.submit, SimTime::ZERO);
        for j in &w.jobs[1..] {
            assert_eq!(j.nodes, 1);
            assert_eq!(j.duration, SimDuration::from_secs(60));
        }
    }

    #[test]
    fn heterogeneous_mix_statistics() {
        let w = gen(ScenarioKind::HeterogeneousMix, 400);
        let mean_dur: f64 =
            w.jobs.iter().map(|j| j.duration.as_secs_f64()).sum::<f64>() / w.len() as f64;
        // Gamma(1.5, 300) has mean 450 (clamping perturbs slightly).
        assert!(
            (350.0..550.0).contains(&mean_dur),
            "mean duration {mean_dur}"
        );
        let small = w.jobs.iter().filter(|j| j.nodes <= 4).count();
        let large = w.jobs.iter().filter(|j| j.nodes >= 48).count();
        assert!(small > large, "node mix skews small");
        assert!(large > 0, "large jobs exist");
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in ScenarioKind::all() {
            let a = generate(kind, 50, ArrivalMode::Dynamic, 123);
            let b = generate(kind, 50, ArrivalMode::Dynamic, 123);
            assert_eq!(a.jobs, b.jobs, "{}", kind.name());
            let c = generate(kind, 50, ArrivalMode::Dynamic, 124);
            assert_ne!(a.jobs, c.jobs, "{} ignores seed", kind.name());
        }
    }

    #[test]
    fn users_are_assigned_from_a_small_pool() {
        let w = gen(ScenarioKind::HeterogeneousMix, 60);
        let mut users: Vec<u32> = w.jobs.iter().map(|j| j.user.0).collect();
        users.sort_unstable();
        users.dedup();
        assert!(users.len() >= 2, "multiple users");
        assert!(users.len() <= 10, "bounded user pool");
    }

    #[test]
    fn figure3_excludes_heterogeneous_mix() {
        let f3 = ScenarioKind::figure3();
        assert_eq!(f3.len(), 6);
        assert!(!f3.contains(&ScenarioKind::HeterogeneousMix));
    }
}
