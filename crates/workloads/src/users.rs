//! User and group assignment for generated jobs.
//!
//! The fairness objectives (paper §3.2) are computed per job *and* per
//! user, so workloads need user metadata. Real HPC traces show a skewed
//! submission distribution — a few heavy users submit most jobs — which we
//! model with a Zipf-like categorical weight.

use rsched_simkit::dist::Categorical;
use rsched_simkit::rng::Rng;

/// Assigns users (and their groups) to generated jobs.
#[derive(Debug, Clone)]
pub struct UserModel {
    weights: Categorical,
    groups_of_users: Vec<u32>,
}

impl UserModel {
    /// A population of `num_users` users with Zipf(`s`)-weighted submission
    /// propensity, partitioned into `num_groups` groups round-robin.
    ///
    /// # Panics
    /// Panics if `num_users == 0` or `num_groups == 0`.
    pub fn zipf(num_users: usize, num_groups: usize, s: f64) -> Self {
        assert!(num_users > 0, "need at least one user");
        assert!(num_groups > 0, "need at least one group");
        let weights: Vec<f64> = (1..=num_users)
            .map(|rank| 1.0 / (rank as f64).powf(s))
            .collect();
        UserModel {
            weights: Categorical::new(&weights),
            groups_of_users: (0..num_users).map(|u| (u % num_groups) as u32).collect(),
        }
    }

    /// A sensible default for an `n`-job workload: roughly one user per
    /// eight jobs (minimum 3), three groups, mild skew — matching the
    /// handful of users visible in the paper's traces (e.g. `user_6`).
    pub fn for_job_count(n: usize) -> Self {
        let users = (n / 8).max(3);
        UserModel::zipf(users, 3.min(users), 1.1)
    }

    /// Number of users in the population.
    pub fn num_users(&self) -> usize {
        self.groups_of_users.len()
    }

    /// Draw `(user, group)` for one job submission.
    pub fn sample(&self, rng: &mut dyn Rng) -> (u32, u32) {
        let user = self.weights.sample_index(rng) as u32;
        (user, self.groups_of_users[user as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_simkit::rng::Xoshiro256PlusPlus;

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let m = UserModel::zipf(10, 2, 1.2);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let (u, g) = m.sample(&mut rng);
            counts[u as usize] += 1;
            assert_eq!(g, u % 2, "round-robin groups");
        }
        assert!(counts[0] > counts[4], "rank 0 should dominate rank 4");
        assert!(counts[4] > counts[9], "rank 4 should dominate rank 9");
        assert!(counts.iter().all(|&c| c > 0), "all users appear");
    }

    #[test]
    fn for_job_count_scales() {
        assert_eq!(UserModel::for_job_count(10).num_users(), 3);
        assert_eq!(UserModel::for_job_count(60).num_users(), 7);
        assert_eq!(UserModel::for_job_count(100).num_users(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let _ = UserModel::zipf(0, 1, 1.0);
    }

    #[test]
    fn deterministic_sampling() {
        let m = UserModel::for_job_count(40);
        let a: Vec<(u32, u32)> = {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
            (0..40).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<(u32, u32)> = {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
            (0..40).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
