//! Job arrival processes.
//!
//! Paper §3.1: *"we simulate job arrival times using Poisson processes …
//! For each workload scenario, we define a scenario-specific arrival rate λ
//! which governs the average time between job submissions."* The static
//! formulation of §3.3 instead submits every job at `t = 0`.

use rsched_simkit::dist::{Exponential, Sample};
use rsched_simkit::rng::Rng;
use rsched_simkit::SimTime;

/// Whether a workload uses the paper's dynamic Poisson arrivals (§3.1) or
/// the static all-at-zero submission of the §3.3 formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// All jobs submitted at `t = 0`.
    Static,
    /// Scenario-specific stochastic arrivals.
    Dynamic,
}

/// A generator of arrival timestamps.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Every job arrives at `t = 0`.
    AllAtZero,
    /// Poisson process: exponential interarrival gaps with the given mean.
    Poisson {
        /// Mean interarrival time in seconds (`1/λ`).
        mean_interarrival_secs: f64,
    },
    /// Bursts of `burst_size` Poisson-spaced jobs separated by long idle
    /// gaps — the *Bursty + Idle* scenario's submission pattern.
    Bursty {
        /// Jobs per burst (the last burst may be short).
        burst_size: usize,
        /// Mean gap between jobs within a burst, seconds.
        within_burst_mean_secs: f64,
        /// Mean idle gap between bursts, seconds.
        idle_gap_mean_secs: f64,
    },
    /// One job at `t = 0`, the rest Poisson-spaced after it — the
    /// *Adversarial* scenario's blocker-then-flood pattern.
    BlockerThenFlood {
        /// Mean interarrival of the flood jobs, seconds.
        flood_mean_secs: f64,
    },
    /// A non-homogeneous Poisson process whose mean interarrival swings
    /// sinusoidally between a busy peak and a quiet trough over one
    /// `period_secs` cycle — the day/night submission rhythm of production
    /// machines (the *Diurnal Wave* scenario).
    Diurnal {
        /// Length of one day/night cycle, seconds (86 400 for a real day).
        period_secs: f64,
        /// Mean interarrival at the peak of the cycle, seconds.
        peak_mean_secs: f64,
        /// Mean interarrival at the trough of the cycle, seconds.
        trough_mean_secs: f64,
    },
}

impl ArrivalProcess {
    /// Generate `n` non-decreasing arrival times.
    pub fn generate(&self, n: usize, rng: &mut dyn Rng) -> Vec<SimTime> {
        match self {
            ArrivalProcess::AllAtZero => vec![SimTime::ZERO; n],
            ArrivalProcess::Poisson {
                mean_interarrival_secs,
            } => {
                let gap = Exponential::with_mean(*mean_interarrival_secs);
                let mut t = 0.0;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            t += gap.sample(rng);
                        }
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                burst_size,
                within_burst_mean_secs,
                idle_gap_mean_secs,
            } => {
                assert!(*burst_size > 0, "burst_size must be positive");
                let within = Exponential::with_mean(*within_burst_mean_secs);
                let idle = Exponential::with_mean(*idle_gap_mean_secs);
                let mut t = 0.0;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            if i % burst_size == 0 {
                                t += idle.sample(rng);
                            } else {
                                t += within.sample(rng);
                            }
                        }
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
            ArrivalProcess::BlockerThenFlood { flood_mean_secs } => {
                let gap = Exponential::with_mean(*flood_mean_secs);
                let mut t = 0.0;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            t += gap.sample(rng);
                        }
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
            ArrivalProcess::Diurnal {
                period_secs,
                peak_mean_secs,
                trough_mean_secs,
            } => {
                assert!(*period_secs > 0.0, "period must be positive");
                assert!(
                    *peak_mean_secs > 0.0 && *trough_mean_secs >= *peak_mean_secs,
                    "peak must be the busier (smaller-mean) end of the cycle"
                );
                let mut t = 0.0;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            // Interarrival mean interpolates sinusoidally
                            // with the phase of the current simulated time:
                            // cycle start = peak rate, half-cycle = trough.
                            let phase = (t / period_secs) * std::f64::consts::TAU;
                            let busy = (phase.cos() + 1.0) / 2.0; // 1 at peak, 0 at trough
                            let mean =
                                trough_mean_secs + busy * (peak_mean_secs - trough_mean_secs);
                            t += Exponential::with_mean(mean).sample(rng);
                        }
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_simkit::rng::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(7)
    }

    fn assert_monotone(times: &[SimTime]) {
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "arrivals must be non-decreasing");
        }
    }

    #[test]
    fn all_at_zero() {
        let t = ArrivalProcess::AllAtZero.generate(5, &mut rng());
        assert_eq!(t, vec![SimTime::ZERO; 5]);
    }

    #[test]
    fn poisson_mean_gap_roughly_matches() {
        let p = ArrivalProcess::Poisson {
            mean_interarrival_secs: 30.0,
        };
        let times = p.generate(2000, &mut rng());
        assert_monotone(&times);
        assert_eq!(times[0], SimTime::ZERO, "first arrival at t=0");
        let span = times.last().unwrap().as_secs_f64();
        let mean_gap = span / 1999.0;
        assert!((mean_gap - 30.0).abs() < 2.0, "mean gap {mean_gap}");
    }

    #[test]
    fn bursty_has_bimodal_gaps() {
        let p = ArrivalProcess::Bursty {
            burst_size: 10,
            within_burst_mean_secs: 5.0,
            idle_gap_mean_secs: 2000.0,
        };
        let times = p.generate(100, &mut rng());
        assert_monotone(&times);
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        // 100 jobs / burst of 10 → 9 idle gaps expected; within-burst gaps
        // (mean 5 s) essentially never exceed 60 s, while idle gaps (mean
        // 2000 s) essentially never fall below it.
        let long_gaps = gaps.iter().filter(|&&g| g > 60.0).count();
        assert_eq!(long_gaps, 9, "gaps: {gaps:?}");
    }

    #[test]
    fn blocker_then_flood_starts_at_zero() {
        let p = ArrivalProcess::BlockerThenFlood {
            flood_mean_secs: 10.0,
        };
        let times = p.generate(50, &mut rng());
        assert_eq!(times[0], SimTime::ZERO);
        assert_monotone(&times);
        assert!(times[1] > SimTime::ZERO, "flood follows the blocker");
    }

    #[test]
    fn diurnal_rate_swings_with_the_cycle() {
        let p = ArrivalProcess::Diurnal {
            period_secs: 10_000.0,
            peak_mean_secs: 5.0,
            trough_mean_secs: 500.0,
        };
        let times = p.generate(400, &mut rng());
        assert_monotone(&times);
        assert_eq!(times[0], SimTime::ZERO);
        // Gaps near the cycle start (peak) must be much tighter than gaps
        // near the half-cycle trough.
        let gap_at = |lo: f64, hi: f64| {
            let gaps: Vec<f64> = times
                .windows(2)
                .filter(|w| {
                    let phase = (w[0].as_secs_f64() / 10_000.0).fract();
                    (lo..hi).contains(&phase)
                })
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect();
            gaps.iter().sum::<f64>() / gaps.len().max(1) as f64
        };
        let peak_mean = gap_at(0.0, 0.15);
        let trough_mean = gap_at(0.35, 0.65);
        assert!(
            trough_mean > 5.0 * peak_mean,
            "trough {trough_mean} vs peak {peak_mean}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = ArrivalProcess::Poisson {
            mean_interarrival_secs: 12.0,
        };
        let a = p.generate(64, &mut Xoshiro256PlusPlus::seed_from_u64(3));
        let b = p.generate(64, &mut Xoshiro256PlusPlus::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let p = ArrivalProcess::AllAtZero;
        assert!(p.generate(0, &mut rng()).is_empty());
    }
}
