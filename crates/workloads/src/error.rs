//! The shared error type of the workload side.
//!
//! SWF ingestion, CSV round-trips, workload validation, and scenario
//! registry lookups all report through one [`WorkloadError`], so harness
//! code matches on a single enum and error text is uniform regardless of
//! which ingestion path failed.

use std::fmt;

/// Why a workload operation (generation, ingestion, validation) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A trace file could not be read.
    Io {
        /// Path that failed to open or read.
        path: String,
        /// The underlying I/O error text.
        message: String,
    },
    /// A trace (SWF or CSV) could not be parsed.
    Parse {
        /// Where in the input the error was found (e.g. `line 12` or
        /// `row 3, column nodes`).
        location: String,
        /// What went wrong there.
        message: String,
    },
    /// A job in a generated or ingested workload violates a machine
    /// constraint.
    Validation {
        /// Id of the offending job.
        job: u32,
        /// The violated constraint.
        message: String,
    },
    /// A scenario name resolved to no registered generator.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
        /// Every registered scenario name, sorted.
        known: Vec<String>,
    },
    /// A scenario was registered under a name already taken.
    DuplicateScenario(String),
    /// A scenario registration used the reserved `swf:` name prefix.
    ReservedScenario(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Io { path, message } => {
                write!(f, "cannot read trace `{path}`: {message}")
            }
            WorkloadError::Parse { location, message } => {
                write!(f, "workload trace error: {location}: {message}")
            }
            WorkloadError::Validation { job, message } => {
                write!(f, "invalid workload: job {job}: {message}")
            }
            WorkloadError::UnknownScenario { name, known } => write!(
                f,
                "no scenario registered under `{name}` (known: {}; `swf:<path>` \
                 loads a Standard Workload Format trace)",
                known.join(", ")
            ),
            WorkloadError::DuplicateScenario(name) => {
                write!(f, "scenario `{name}` is already registered")
            }
            WorkloadError::ReservedScenario(name) => {
                write!(
                    f,
                    "cannot register scenario `{name}`: the `swf:` prefix is \
                     reserved for trace paths"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_uniform_and_specific() {
        let io = WorkloadError::Io {
            path: "x.swf".into(),
            message: "no such file".into(),
        };
        assert!(io.to_string().contains("x.swf"));

        let parse = WorkloadError::Parse {
            location: "line 3".into(),
            message: "expected 18 fields".into(),
        };
        assert!(parse.to_string().contains("line 3"));
        assert!(parse.to_string().starts_with("workload trace error"));

        let unknown = WorkloadError::UnknownScenario {
            name: "nope".into(),
            known: vec!["adversarial".into()],
        };
        assert!(unknown.to_string().contains("swf:<path>"));
        assert!(unknown.to_string().contains("adversarial"));
    }

    #[test]
    fn is_a_std_error() {
        let err: Box<dyn std::error::Error> =
            Box::new(WorkloadError::DuplicateScenario("dup".into()));
        assert!(err.to_string().contains("dup"));
    }
}
