//! # rsched-workloads
//!
//! Scenario-driven HPC workload generation (paper §3.1) behind an **open,
//! string-keyed scenario registry** — the workload-side twin of the policy
//! registry in `rsched-registry`.
//!
//! Workloads are addressed by name through [`ScenarioRegistry`]: the
//! paper's seven synthetic scenarios (*Homogeneous Short*, *Heterogeneous
//! Mix*, *Long-Job Dominant*, *High Parallelism*, *Resource Sparse*,
//! *Bursty + Idle*, *Adversarial*), five extended ones (*Diurnal Wave*,
//! *Wide-Job Convoy*, *GPU-Skewed Hetmix*, *Long-Tail Runtime*, *BigMem
//! Burst*), the
//! Polaris trace substrate of paper §5, and — via the `swf:<path>` name
//! form — any [Standard Workload Format](swf) archive trace on disk.
//! Registering a new scenario is one [`ScenarioRegistry::register`] call;
//! no enum variant or `match` arm required.
//!
//! ```
//! use rsched_workloads::{names, scenario_builtins, ArrivalMode, ScenarioContext};
//!
//! // 20 Heterogeneous-Mix jobs with Poisson arrivals, by registry name.
//! let ctx = ScenarioContext::new(20)
//!     .with_mode(ArrivalMode::Dynamic)
//!     .with_seed(42);
//! let workload = scenario_builtins()
//!     .generate(names::HETEROGENEOUS_MIX, &ctx)
//!     .expect("builtin scenario");
//! assert_eq!(workload.len(), 20);
//! assert_eq!(workload.scenario, "heterogeneous_mix");
//!
//! // The registry knows every builtin by name (case-insensitively).
//! assert!(scenario_builtins().contains("Bursty-Idle"));
//! assert_eq!(scenario_builtins().len(), names::ALL_BUILTIN.len());
//! ```
//!
//! The enum-addressed legacy API ([`ScenarioKind`], [`generate`]) survives
//! as deprecated shims in [`compat`], bit-identical to the registry path.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod arrivals;
pub mod compat;
pub mod error;
pub mod polaris;
pub mod registry;
pub mod scenarios;
pub mod swf;
pub mod synth;
pub mod trace;
pub mod users;

pub use arrivals::{ArrivalMode, ArrivalProcess};
#[allow(deprecated)]
pub use compat::{generate, ScenarioKind};
pub use error::WorkloadError;
pub use registry::{
    builtins as scenario_builtins, names, ScenarioContext, ScenarioGenerator, ScenarioInfo,
    ScenarioRegistry,
};
pub use scenarios::Workload;
pub use users::UserModel;
