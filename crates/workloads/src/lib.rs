//! # rsched-workloads
//!
//! Scenario-driven HPC workload generation (paper §3.1).
//!
//! The paper evaluates on **seven benchmark scenarios**, each reflecting a
//! distinct operational pattern observed in real job traces, instantiated
//! with 10–100 jobs, with Poisson-process arrivals per scenario-specific
//! rates:
//!
//! * *Homogeneous Short* — uniform 30–120 s jobs, 2 nodes / 4 GB (CI/test).
//! * *Heterogeneous Mix* — Gamma(shape 1.5, scale 300) runtimes, varied
//!   resources (production mix).
//! * *Long-Job Dominant* — 20 % extremely long jobs (50 000 s, 128 nodes)
//!   among short ones (500 s, 2 nodes) — convoy-effect probe.
//! * *High Parallelism* — 64–256-node jobs with Gamma walltimes
//!   (tightly-coupled simulations).
//! * *Resource Sparse* — 1-node, <8 GB, 30–300 s jobs (minimal contention).
//! * *Bursty + Idle* — alternating short/long jobs in bursts separated by
//!   idle gaps.
//! * *Adversarial* — one 128-node / 100 000 s blocker followed by many
//!   1-node / 60 s jobs.
//!
//! [`polaris`] additionally provides the real-trace substrate of paper §5: a
//! synthesizer calibrated to the published description of the Polaris
//! November-2024 log plus the paper's exact preprocessing pipeline.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrivals;
pub mod polaris;
pub mod scenarios;
pub mod trace;
pub mod users;

pub use arrivals::{ArrivalMode, ArrivalProcess};
pub use scenarios::{generate, ScenarioKind, Workload};
pub use users::UserModel;
