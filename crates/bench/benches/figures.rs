//! One benchmark group per paper figure: the cost of regenerating each
//! experiment at reduced scale (quick mode). The absolute figures are
//! produced by the `rsched-experiments` binaries; these benches guard the
//! harness's performance.

use criterion::{criterion_group, criterion_main, Criterion};
use rsched_bench::bench_options;
use rsched_experiments::figures::{fig3, fig4, fig5, fig6, fig7, fig8};
use rsched_parallel::ThreadPool;

fn bench_figures(c: &mut Criterion) {
    let opts = bench_options();
    let pool = ThreadPool::available_parallelism();

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig3_six_scenarios", |b| {
        b.iter(|| std::hint::black_box(fig3::run(&opts, &pool)))
    });
    group.bench_function("fig4_scalability", |b| {
        b.iter(|| std::hint::black_box(fig4::run(&opts, &pool)))
    });
    group.bench_function("fig5_overhead_by_scenario", |b| {
        b.iter(|| std::hint::black_box(fig5::run(&opts, &pool)))
    });
    group.bench_function("fig6_overhead_scaling", |b| {
        b.iter(|| std::hint::black_box(fig6::run(&opts, &pool)))
    });
    group.bench_function("fig7_robustness", |b| {
        b.iter(|| std::hint::black_box(fig7::run(&opts, &pool)))
    });
    group.bench_function("fig8_polaris", |b| {
        b.iter(|| std::hint::black_box(fig8::run(&opts, &pool)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
