//! Hot-path microbenchmarks: the simulator kernel, the allocator, the
//! solver's SGS decoder, and the agent's per-decision pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rsched_cluster::{ClusterConfig, FirstFitAllocator, JobId, JobSpec, UserId};
use rsched_core::action::parse_completion;
use rsched_core::{PromptBuilder, Scratchpad};
use rsched_cpsolver::sgs::decode_with_makespan;
use rsched_cpsolver::{Instance, Task};
use rsched_llm::backend::LanguageModel;
use rsched_llm::prompt_parse::parse_prompt;
use rsched_llm::SimulatedLlm;
use rsched_sim::{
    run_simulation, CountingObserver, RunningSummary, SchedulingPolicy, SimOptions, Simulation,
    SystemView,
};
use rsched_simkit::{EventQueue, SimDuration, SimTime};
use rsched_workloads::{scenario_builtins, ScenarioContext};

fn event_queue_throughput(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_millis(i * 7919 % 100_000), i);
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            std::hint::black_box(count)
        })
    });
}

fn allocator_cycle(c: &mut Criterion) {
    c.bench_function("first_fit_alloc_release_256n", |b| {
        b.iter(|| {
            let mut alloc = FirstFitAllocator::new(256, 2048);
            let mut grants = Vec::new();
            for i in 0..64u32 {
                if let Some(g) = alloc.try_allocate(1 + i % 8, 1 + (i as u64 % 32)) {
                    grants.push(g);
                }
            }
            for g in &grants {
                alloc.release(g);
            }
            std::hint::black_box(alloc.free_nodes())
        })
    });
}

fn sgs_decode(c: &mut Criterion) {
    let tasks: Vec<Task> = (0..100)
        .map(|i| Task {
            id: i as u32,
            duration: 1_000 + (i as u64 * 7919) % 300_000,
            nodes: 1 + (i as u32 * 13) % 64,
            memory: 1 + (i as u64 * 31) % 512,
            release: (i as u64 * 997) % 50_000,
        })
        .collect();
    let instance = Instance::new(tasks, 256, 2048);
    let order: Vec<usize> = (0..instance.len()).collect();
    c.bench_function("sgs_decode_100_tasks", |b| {
        b.iter(|| std::hint::black_box(decode_with_makespan(&instance, &order)))
    });
}

/// Owns the queue/running/completed collections a borrowed
/// [`SystemView`] points into.
struct SampleState {
    waiting: Vec<JobSpec>,
    running: Vec<RunningSummary>,
}

fn sample_state(queue_len: usize) -> SampleState {
    SampleState {
        waiting: (0..queue_len)
            .map(|i| {
                JobSpec::new(
                    i as u32,
                    (i % 7) as u32,
                    SimTime::ZERO,
                    SimDuration::from_secs(60 + (i as u64 * 97) % 5000),
                    1 + (i as u32 * 13) % 64,
                    1 + (i as u64 * 31) % 256,
                )
            })
            .collect(),
        running: vec![RunningSummary {
            id: JobId(9999),
            user: UserId(1),
            nodes: 56,
            memory_gb: 548,
            start: SimTime::ZERO,
            submit: SimTime::ZERO,
            expected_end: SimTime::from_secs(9_000),
            class: None,
        }],
    }
}

impl SampleState {
    fn view(&self) -> SystemView<'_> {
        SystemView {
            now: SimTime::from_secs(1554),
            config: ClusterConfig::paper_default(),
            free_nodes: 200,
            free_memory_gb: 1500,
            free_by_class: [0; rsched_cluster::MAX_CLASSES],
            waiting: &self.waiting,
            running: &self.running,
            completed: &[],
            completed_stats: rsched_cluster::CompletedStats::default(),
            pending_arrivals: 3,
            total_jobs: self.waiting.len() + 4,
            calendar: None,
            telemetry: None,
        }
    }
}

fn prompt_pipeline(c: &mut Criterion) {
    let state = sample_state(60);
    let pad = Scratchpad::default();
    let prompt = PromptBuilder::render(&state.view(), &pad);
    c.bench_function("prompt_render_60_jobs", |b| {
        b.iter(|| std::hint::black_box(PromptBuilder::render(&state.view(), &pad)))
    });
    c.bench_function("prompt_parse_60_jobs", |b| {
        b.iter(|| std::hint::black_box(parse_prompt(&prompt).expect("parses")))
    });
    c.bench_function("completion_parse", |b| {
        b.iter(|| {
            std::hint::black_box(
                parse_completion("Thought: the short job wins\nAction: StartJob(job_id=40)")
                    .expect("parses"),
            )
        })
    });
}

fn agent_decision_step(c: &mut Criterion) {
    let state = sample_state(60);
    c.bench_function("simulated_llm_full_decision_60_jobs", |b| {
        b.iter_batched(
            || SimulatedLlm::claude37(7),
            |mut llm| {
                let prompt = PromptBuilder::render(&state.view(), &Scratchpad::default());
                std::hint::black_box(llm.complete(&prompt).expect("completes"))
            },
            BatchSize::SmallInput,
        )
    });
}

fn full_simulation_fcfs(c: &mut Criterion) {
    let workload = scenario_builtins()
        .generate("heterogeneous_mix", &ScenarioContext::new(60).with_seed(5))
        .expect("builtin scenario");
    c.bench_function("simulate_fcfs_hetmix_60", |b| {
        b.iter_batched(
            rsched_schedulers::Fcfs::default,
            |mut policy| {
                std::hint::black_box(
                    run_simulation(
                        ClusterConfig::paper_default(),
                        &workload.jobs,
                        &mut policy as &mut dyn SchedulingPolicy,
                        &SimOptions::default(),
                    )
                    .expect("completes"),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn full_simulation_with_observer(c: &mut Criterion) {
    // The streaming-observer hooks must stay ~free on the kernel's hot
    // path: compare with `simulate_fcfs_hetmix_60` above.
    let workload = scenario_builtins()
        .generate("heterogeneous_mix", &ScenarioContext::new(60).with_seed(5))
        .expect("builtin scenario");
    c.bench_function("simulate_fcfs_hetmix_60_with_observer", |b| {
        b.iter_batched(
            || (rsched_schedulers::Fcfs::default(), CountingObserver::new()),
            |(mut policy, mut counter)| {
                let outcome = Simulation::new(ClusterConfig::paper_default())
                    .jobs(&workload.jobs)
                    .observer(&mut counter)
                    .run(&mut policy as &mut dyn SchedulingPolicy)
                    .expect("completes");
                std::hint::black_box((outcome, counter.decisions))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    event_queue_throughput,
    allocator_cycle,
    sgs_decode,
    prompt_pipeline,
    agent_decision_step,
    full_simulation_fcfs,
    full_simulation_with_observer
);
criterion_main!(benches);
