//! The `service` bench group: the scheduler daemon's two headline numbers
//! — sustained submission throughput through the ingest/admission front
//! door, and decision-tick latency with a 10,000-job-deep waiting queue.
//!
//! ```text
//! cargo bench -p rsched-bench --bench service           # measure
//! cargo bench -p rsched-bench --bench service -- --test # CI smoke (1 iter)
//! ```
//!
//! A full measurement run also rewrites `BENCH_service.json` at the
//! workspace root, recording the throughput/latency trend plus the PR's
//! acceptance thresholds (≥ 50k submissions/sec sustained, p99 decision
//! tick < 5 ms at 10k queue depth).

use criterion::{BatchSize, Criterion};
use rsched_cluster::{ClusterConfig, JobSpec};
use rsched_schedulers::Fcfs;
use rsched_service::{
    LatencyRecorder, LatencySummary, ManualClock, ServiceConfig, ServiceCore, ServiceDaemon,
    TenantId,
};
use rsched_simkit::{SimDuration, SimTime};

/// A 1-node burst job; `dur_s` controls when its completion event fires.
fn burst_job(id: u32, dur_s: u64) -> JobSpec {
    JobSpec::new(
        id,
        id % 3,
        SimTime::ZERO,
        SimDuration::from_secs(dur_s),
        1,
        1,
    )
}

fn live_config() -> ServiceConfig {
    let mut config = ServiceConfig::new(ClusterConfig::paper_default());
    config.max_batch = usize::MAX;
    config
}

/// A service core in decision steady state: 256 staggered long-runners
/// occupy every node and `depth` more jobs wait in queue, so each
/// subsequent tick retires exactly one completion and places exactly one
/// waiting job off a `depth`-deep queue.
fn deep_queue_core(depth: u32) -> ServiceCore {
    let (mut core, handle) =
        ServiceCore::new(live_config(), Box::new(Fcfs::default()), SimTime::ZERO);
    for i in 0..256u32 {
        // Completions spaced 1 s apart, starting one hour in.
        handle
            .submit(TenantId(i % 3), burst_job(i + 1, 3_600 + u64::from(i)))
            .expect("core holds receiver");
    }
    for i in 0..depth {
        handle
            .submit(TenantId(i % 3), burst_job(257 + i, 7_200))
            .expect("core holds receiver");
    }
    core.tick(SimTime::ZERO, &mut []).expect("setup tick");
    assert_eq!(core.kernel().running_count(), 256, "machine saturated");
    assert_eq!(core.kernel().waiting_len(), depth as usize, "queue primed");
    core
}

/// Ingest + admission throughput: one iteration pushes 50k submissions
/// through the MPSC channel and a single unbounded-batch tick admits them
/// all into the ranked waiting queue (plus the first decision epoch).
fn ingest_admit_50k(c: &mut Criterion) {
    const N: u32 = 50_000;
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.bench_function("ingest_admit_50k", |b| {
        b.iter_batched(
            || ServiceCore::new(live_config(), Box::new(Fcfs::default()), SimTime::ZERO),
            |(mut core, handle)| {
                for i in 0..N {
                    handle
                        .submit(TenantId(i % 3), burst_job(i + 1, 600))
                        .expect("core holds receiver");
                }
                let stats = core.tick(SimTime::ZERO, &mut []).expect("tick");
                assert_eq!(stats.admitted, N as usize);
                core
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Steady-state decision tick with a 10k-deep waiting queue: each
/// iteration retires one completion and runs one epoch (one placement +
/// one delay) against the full queue.
fn decision_tick_10k_deep(c: &mut Criterion) {
    let mut core = deep_queue_core(10_000);
    let mut group = c.benchmark_group("service");
    group.sample_size(200);
    group.bench_function("decision_tick_10k_deep_queue", |b| {
        b.iter(|| {
            let t = core
                .kernel()
                .next_event_time()
                .expect("steady state has a next completion");
            core.tick(t, &mut []).expect("steady-state tick")
        })
    });
    group.finish();
}

/// Full daemon lifecycle: spawn the service thread on a manual clock,
/// absorb a 5k-job burst from three tenants, drain, join.
fn daemon_burst_drain_5k(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.bench_function("daemon_burst_drain_5k", |b| {
        b.iter(|| {
            let daemon = ServiceDaemon::spawn(live_config(), ManualClock::new(), || {
                Box::new(Fcfs::default())
            });
            let handle = daemon.handle();
            for i in 0..5_000u32 {
                handle
                    .submit(TenantId(i % 3), burst_job(i + 1, 60))
                    .expect("daemon running");
            }
            let report = daemon.drain().expect("drains");
            assert_eq!(report.completed, 5_000);
            report
        })
    });
    group.finish();
}

/// The p50/p99 decision-tick latency profile at 10k queue depth, sampled
/// over many steady-state ticks with the service's own wall-clock
/// telemetry (`TickStats::wall_nanos`).
fn tick_latency_profile(test_mode: bool) -> LatencySummary {
    let samples = if test_mode { 100 } else { 5_000 };
    let mut core = deep_queue_core(10_000);
    let mut recorder = LatencyRecorder::new();
    for _ in 0..samples {
        let t = core
            .kernel()
            .next_event_time()
            .expect("steady state has a next completion");
        let stats = core.tick(t, &mut []).expect("steady-state tick");
        recorder.record(stats.wall_nanos);
    }
    let summary = recorder.summary();
    println!("service/tick_latency_10k_deep_queue: {summary}");
    summary
}

/// Rewrites `BENCH_service.json` at the workspace root after a full
/// measurement run (skipped in `--test` smoke mode), recording the
/// measured medians, the derived throughput, the tick-latency quantiles,
/// and the acceptance thresholds.
fn write_trend_file(criterion: &Criterion, latency: &LatencySummary) {
    if criterion.is_test_mode() || criterion.measurements().is_empty() {
        return; // --test smoke mode: nothing measured, keep the file as-is.
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let measurements = criterion.measurements();
    let mut body = String::from(
        "{\n  \"_comment\": \"service-bench trend file; regenerate with `cargo bench -p rsched-bench --bench service`.\",\n  \"benches_us_per_iter\": {\n",
    );
    for (i, (label, t)) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{label}\": {:.3}{sep}\n",
            t.as_secs_f64() * 1e6
        ));
    }
    body.push_str("  },\n");

    let subs_per_sec = measurements
        .iter()
        .find(|(label, _)| label == "service/ingest_admit_50k")
        .map(|(_, t)| 50_000.0 / t.as_secs_f64());
    if let Some(rate) = subs_per_sec {
        body.push_str(&format!(
            "  \"sustained_submissions_per_sec\": {rate:.0},\n"
        ));
    }
    body.push_str(&format!(
        "  \"tick_latency_10k_deep_queue\": {{\n    \"samples\": {},\n    \"mean_us\": {:.3},\n    \"p50_us\": {:.3},\n    \"p99_us\": {:.3},\n    \"max_us\": {:.3}\n  }},\n",
        latency.count,
        latency.mean_nanos as f64 / 1e3,
        latency.p50_nanos as f64 / 1e3,
        latency.p99_nanos as f64 / 1e3,
        latency.max_nanos as f64 / 1e3,
    ));

    let throughput_ok = subs_per_sec.map(|r| r >= 50_000.0).unwrap_or(false);
    let latency_ok = (latency.p99_nanos as f64) < 5e6;
    body.push_str(&format!(
        "  \"acceptance\": {{\n    \"sustained_submissions_per_sec_min\": 50000,\n    \"p99_tick_latency_ms_max\": 5.0,\n    \"throughput_pass\": {throughput_ok},\n    \"latency_pass\": {latency_ok}\n  }}\n}}\n"
    ));
    match std::fs::write(path, &body) {
        Ok(()) => println!("wrote BENCH_service.json"),
        Err(e) => eprintln!("could not write BENCH_service.json: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    ingest_admit_50k(&mut criterion);
    decision_tick_10k_deep(&mut criterion);
    daemon_burst_drain_5k(&mut criterion);
    let latency = tick_latency_profile(criterion.is_test_mode());
    write_trend_file(&criterion, &latency);
}
