//! The `scale` bench group: proof that the zero-copy incremental kernel
//! holds up at archive scale (10k jobs through the 1M streaming tier),
//! far beyond the paper's 75-job ceiling (§3.7).
//!
//! ```text
//! cargo bench -p rsched-bench --bench scale          # measure
//! cargo bench -p rsched-bench --bench scale -- --test # CI smoke (1 iter)
//! ```
//!
//! A full measurement run also rewrites `BENCH_scale.json` at the
//! workspace root, so every future PR inherits a perf trajectory to diff
//! against. The pre-refactor cloning kernel measured on the same workloads
//! is recorded there as the fixed baseline.

use criterion::Criterion;
use rsched_campaign::{Campaign, CampaignSpec};
use rsched_cluster::{
    Allocation, ClassedAllocator, ClusterConfig, CompletedStats, JobId, JobSpec, PlacementRequest,
    UserId,
};
use rsched_parallel::ThreadPool;
use rsched_schedulers::{ConservativeBackfill, EasyBackfill, Fcfs, Sjf};
use rsched_sim::{run_simulation, CapacityCalendar, RunningSummary, SimOptions, SystemView};
use rsched_simkit::{SimDuration, SimTime};
use rsched_workloads::swf::{SwfJob, SwfReader, SwfTrace};
use rsched_workloads::synth::{polaris_synth_text, polaris_synth_workload};
use rsched_workloads::{scenario_builtins, ArrivalMode, ScenarioContext};

fn heavy_tail_jobs(n: usize) -> Vec<JobSpec> {
    scenario_builtins()
        .generate(
            "long_tail",
            &ScenarioContext::new(n)
                .with_mode(ArrivalMode::Static)
                .with_seed(7),
        )
        .expect("builtin scenario")
        .jobs
}

/// A deterministic synthetic SWF archive, rendered to Standard Workload
/// Format text and re-ingested through the full parse → clean → `JobSpec`
/// pipeline — the same path `swf:<path>` scenario names take.
fn synthetic_swf_jobs(n: usize) -> Vec<JobSpec> {
    let jobs: Vec<SwfJob> = (0..n as i64)
        .map(|i| SwfJob {
            job_id: i + 1,
            submit_secs: i * 5 + (i * 7919) % 60,
            wait_secs: -1,
            run_secs: 60 + (i * 104_729) % 20_000,
            allocated_procs: 1 + (i * 31) % 128,
            avg_cpu_secs: -1.0,
            used_memory_kb: 1_000_000 + (i * 977) % 4_000_000,
            requested_procs: 1 + (i * 31) % 128,
            requested_secs: 120 + (i * 104_729) % 40_000,
            requested_memory_kb: -1,
            status: 1,
            user: i % 97,
            group: i % 11,
            executable: -1,
            queue: 1,
            partition: 1,
            preceding_job: -1,
            think_secs: -1,
        })
        .collect();
    let trace = SwfTrace {
        directives: vec![("MaxNodes".to_string(), "560".to_string())],
        jobs,
    };
    let reparsed = SwfTrace::parse(&trace.to_string()).expect("round trip");
    reparsed.to_jobs(0)
}

fn simulate_fcfs_10k(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(10_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("simulate_fcfs_10k", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_simulation(cluster, &jobs, &mut Fcfs::default(), &SimOptions::default())
                    .expect("completes"),
            )
        })
    });
    group.finish();
}

fn simulate_sjf_swf_replay(c: &mut Criterion) {
    let jobs = synthetic_swf_jobs(10_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("simulate_sjf_swf_replay_10k", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_simulation(cluster, &jobs, &mut Sjf::default(), &SimOptions::default())
                    .expect("completes"),
            )
        })
    });
    group.finish();
}

/// The generalized placement kernel, isolated: 10k vector-demand
/// requests (GPU-skewed mix: pinned, spanning-classless, and
/// zero-demand jobs) scanned against the classed 256-node machine.
/// Each request allocates if it fits, releasing oldest grants first-fit
/// when it does not — a rolling-occupancy sweep over `plan_take`, the
/// per-class free watermarks, and the node-mask arithmetic.
fn placement_scan_mixed_class(c: &mut Criterion) {
    let cluster = ClusterConfig::mixed_256();
    let jobs = scenario_builtins()
        .generate(
            "gpu_skewed_hetmix",
            &ScenarioContext::new(10_000)
                .with_mode(ArrivalMode::Static)
                .with_seed(7)
                .with_cluster(cluster),
        )
        .expect("builtin scenario")
        .jobs;
    let requests: Vec<PlacementRequest> = jobs.iter().map(PlacementRequest::from).collect();
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("placement_scan_mixed_class_10k", |b| {
        b.iter(|| {
            let mut allocator = ClassedAllocator::new(cluster.topology);
            let mut held: std::collections::VecDeque<Allocation> =
                std::collections::VecDeque::new();
            let mut placed = 0u64;
            for req in &requests {
                while !allocator.can_fit(req) {
                    let oldest = held.pop_front().expect("an empty machine fits every job");
                    allocator.release(&oldest);
                }
                held.push_back(
                    allocator
                        .try_allocate(req)
                        .expect("can_fit implies allocate"),
                );
                placed += 1;
            }
            std::hint::black_box(placed)
        })
    });
    group.finish();
}

/// The conservative reservation-list policy at 10k jobs — the worst-case
/// policy cost of the backfill family on the flat Polaris machine. Since
/// the capacity-calendar refactor each epoch clones the kernel's cached
/// skyline instead of rebuilding it from the running set; the
/// rebuild-per-decide figure is pinned as a baseline in
/// `BENCH_scale.json`.
fn simulate_conservative_backfill_10k(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(10_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("simulate_conservative_backfill_10k", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_simulation(
                    cluster,
                    &jobs,
                    &mut ConservativeBackfill::new(),
                    &SimOptions::default(),
                )
                .expect("completes"),
            )
        })
    });
    group.finish();
}

/// EASY with the strict shadow-time veto at 10k jobs: policy-side
/// candidate filtering (sharded once the queue is deep enough) plus the
/// kernel-side `strict_backfill` validation served from the actual-end
/// capacity calendar.
fn simulate_easy_backfill_10k(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(10_000);
    let cluster = ClusterConfig::polaris();
    let options = SimOptions {
        strict_backfill: true,
        ..SimOptions::default()
    };
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("simulate_easy_backfill_10k", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_simulation(cluster, &jobs, &mut EasyBackfill::new(), &options)
                    .expect("completes"),
            )
        })
    });
    group.finish();
}

/// The new conservative-backfill scale tier: 100k heavy-tail jobs. Only
/// feasible at all because the per-epoch profile is a clone of the
/// kernel's incrementally-maintained calendar.
fn simulate_conservative_backfill_100k(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(100_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("scale");
    group.sample_size(2);
    group.bench_function("simulate_conservative_backfill_100k", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_simulation(
                    cluster,
                    &jobs,
                    &mut ConservativeBackfill::new(),
                    &SimOptions::default(),
                )
                .expect("completes"),
            )
        })
    });
    group.finish();
}

/// The calendar data structure, isolated: one deep reservation pass —
/// 10k `earliest_window` placements each followed by its binary-searched
/// `reserve` subtraction — over a skyline seeded with 512 running-job
/// releases. This is the O(log P + touched segments) claim, measured
/// without the simulator around it.
fn calendar_reserve_10k(c: &mut Criterion) {
    let base = CapacityCalendar::build(
        SimTime::ZERO,
        560,
        286_720,
        [0; rsched_cluster::MAX_CLASSES],
        (0..512u64).map(|i| {
            (
                SimTime::from_secs(60 + i * 37 % 50_000),
                1 + (i as u32 * 13) % 8,
                4 + i * 29 % 64,
                [0; rsched_cluster::MAX_CLASSES],
            )
        }),
    );
    let demands: Vec<(u32, u64, SimDuration)> = (0..10_000u64)
        .map(|i| {
            (
                1 + (i as u32 * 31) % 64,
                1 + i * 97 % 256,
                SimDuration::from_secs(60 + i * 104_729 % 20_000),
            )
        })
        .collect();
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("calendar_reserve_10k", |b| {
        b.iter(|| {
            let mut cal = base.clone();
            let mut acc = 0u64;
            for &(nodes, mem, wall) in &demands {
                let start = cal.earliest_window(nodes, mem, wall);
                cal.reserve(start, start + wall, nodes, mem);
                acc = acc.wrapping_add(start.as_millis());
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn simulate_fcfs_heavy_tail_100k(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(100_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("scale");
    group.sample_size(3);
    group.bench_function("simulate_fcfs_heavy_tail_100k", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_simulation(cluster, &jobs, &mut Fcfs::default(), &SimOptions::default())
                    .expect("completes"),
            )
        })
    });
    group.finish();
}

/// The zero-copy claim, isolated: constructing a borrowed view over a
/// 10k-deep queue vs the compat path's owned deep copy of the same state.
fn view_build(c: &mut Criterion) {
    let waiting: Vec<JobSpec> = (0..10_000)
        .map(|i| {
            JobSpec::new(
                i as u32,
                (i % 97) as u32,
                SimTime::from_secs(i as u64),
                SimDuration::from_secs(60 + (i as u64 * 97) % 5000),
                1 + (i as u32 * 13) % 64,
                1 + (i as u64 * 31) % 256,
            )
        })
        .collect();
    let running: Vec<RunningSummary> = (0..256)
        .map(|i| RunningSummary {
            id: JobId(100_000 + i),
            user: UserId(i % 97),
            nodes: 1,
            memory_gb: 4,
            start: SimTime::ZERO,
            submit: SimTime::ZERO,
            expected_end: SimTime::from_secs(9_000),
            class: None,
        })
        .collect();
    let make_view = || SystemView {
        now: SimTime::from_secs(12_000),
        config: ClusterConfig::polaris(),
        free_nodes: 100,
        free_memory_gb: 1_000,
        free_by_class: [0; rsched_cluster::MAX_CLASSES],
        waiting: &waiting,
        running: &running,
        completed: &[],
        completed_stats: CompletedStats::default(),
        pending_arrivals: 5,
        total_jobs: waiting.len() + running.len() + 5,
        calendar: None,
        telemetry: None,
    };
    let mut group = c.benchmark_group("scale");
    group.bench_function("view_build_borrowed_10k", |b| {
        b.iter(|| std::hint::black_box(make_view()))
    });
    group.finish();
}

/// The campaign engine at the paper grid's 1k-job tier: a representative
/// three-scenario slice of `fixtures/campaigns/paper_grid.toml` — the
/// paper's seven-policy set minus OR-Tools (whose offline solve is budgeted
/// in seconds per cell and would swamp the engine signal), one seed,
/// cache disabled via a fresh scratch directory per iteration. Measures
/// grid expansion, hashing, pool dispatch, 18 × 1k-job simulations, and
/// the Pareto analysis end to end.
fn campaign_paper_grid_1k(c: &mut Criterion) {
    let spec = CampaignSpec::parse(
        r#"
name = "paper-grid-1k-bench"
policies = ["FCFS", "SJF", "OR-Tools", "Claude-3.7", "O4-Mini", "EASY", "Random"]
scenarios = ["heterogeneous_mix", "long_job_dominant", "long_tail"]
jobs = [1000]
seeds = [2025]
objectives = ["avg_wait", "avg_turnaround", "node_util", "wait_fairness"]
exclude = ["OR-Tools/1000"]
"#,
    )
    .expect("bench spec is valid");
    let root =
        std::env::temp_dir().join(format!("rsched_bench_campaign_1k_{}", std::process::id()));
    let pool = ThreadPool::available_parallelism();
    let mut group = c.benchmark_group("scale");
    group.sample_size(2);
    group.bench_function("campaign_paper_grid_1k", |b| {
        b.iter(|| {
            // Fresh scratch directory: every iteration executes the whole
            // grid, never the cache.
            let _ = std::fs::remove_dir_all(&root);
            let campaign = Campaign::new(spec.clone()).out_root(&root);
            std::hint::black_box(campaign.run(&pool).expect("completes"))
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

/// The streaming half of the 1M tier: `SwfReader` over a Polaris-scale
/// synthetic archive rendered to SWF text once up front (~90 MB), parsed
/// and converted line-at-a-time into `JobSpec`s — the exact pipeline
/// `examples/streaming_replay.rs` and the `polaris_synth:<n>` scenario
/// name drive.
fn swf_stream_ingest_1m(c: &mut Criterion) {
    let text = polaris_synth_text(1_000_000, 2025);
    let mut group = c.benchmark_group("scale");
    group.sample_size(2);
    group.bench_function("swf_stream_ingest_1m", |b| {
        b.iter(|| {
            let jobs = SwfReader::from_text(&text)
                .into_jobs(0)
                .expect("synthetic archive streams");
            assert_eq!(jobs.len(), 1_000_000);
            std::hint::black_box(jobs)
        })
    });
    group.finish();
}

/// The simulation half of the 1M tier: a full FCFS replay of the 1M-job
/// synthetic Polaris stream through the incremental kernel — SoA wait
/// queue, watermark short-circuit, and the flat-column placement scan.
/// The `#[ignore]`d smoke in `tests/scale_equivalence.rs` bounds the same
/// run at 30 s wall clock.
fn simulate_fcfs_polaris_synth_1m(c: &mut Criterion) {
    let jobs = polaris_synth_workload(1_000_000, 2025);
    let cluster = ClusterConfig::polaris();
    // One placement query per job plus epilogue queries outgrows the
    // default budget; the budget guards livelock, not scale.
    let options = SimOptions {
        max_queries: 16_000_000,
        ..SimOptions::default()
    };
    let mut group = c.benchmark_group("scale");
    group.sample_size(2);
    group.bench_function("simulate_fcfs_polaris_synth_1m", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_simulation(cluster, &jobs, &mut Fcfs::default(), &options).expect("completes"),
            )
        })
    });
    group.finish();
}

/// Timings the pre-refactor cloning kernel produced for the same
/// workloads on the reference container (measured immediately before the
/// zero-copy refactor landed) — the denominator of the speedup column in
/// `BENCH_scale.json`.
const BASELINE_CLONING_KERNEL_US: &[(&str, f64)] = &[
    ("scale/simulate_fcfs_10k", 943_000.0),
    ("scale/simulate_fcfs_heavy_tail_100k", 161_913_000.0),
];

/// Timing the rebuild-per-decide conservative backfill produced for the
/// same workload immediately before the capacity-calendar refactor — the
/// denominator of the backfill speedup column.
const BASELINE_REBUILD_BACKFILL_US: &[(&str, f64)] =
    &[("scale/simulate_conservative_backfill_10k", 379_276.797)];

fn write_trend_file(criterion: &Criterion) {
    if criterion.is_test_mode() || criterion.measurements().is_empty() {
        return; // --test smoke mode: nothing measured, keep the file as-is.
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let mut body = String::from("{\n  \"_comment\": \"scale-bench trend file; regenerate with `cargo bench -p rsched-bench --bench scale`. Baselines are the pre-refactor cloning kernel.\",\n  \"benches_us_per_iter\": {\n");
    let measurements = criterion.measurements();
    for (i, (label, t)) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{label}\": {:.3}{sep}\n",
            t.as_secs_f64() * 1e6
        ));
    }
    body.push_str("  },\n  \"baseline_cloning_kernel_us_per_iter\": {\n");
    for (i, (label, us)) in BASELINE_CLONING_KERNEL_US.iter().enumerate() {
        let sep = if i + 1 == BASELINE_CLONING_KERNEL_US.len() {
            ""
        } else {
            ","
        };
        body.push_str(&format!("    \"{label}\": {us:.1}{sep}\n"));
    }
    let speedups_against = |baselines: &[(&str, f64)]| -> Vec<(String, f64)> {
        baselines
            .iter()
            .filter_map(|(label, base)| {
                measurements
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, t)| (label.to_string(), base / (t.as_secs_f64() * 1e6)))
            })
            .collect()
    };
    body.push_str("  },\n  \"baseline_rebuild_backfill_us_per_iter\": {\n");
    for (i, (label, us)) in BASELINE_REBUILD_BACKFILL_US.iter().enumerate() {
        let sep = if i + 1 == BASELINE_REBUILD_BACKFILL_US.len() {
            ""
        } else {
            ","
        };
        body.push_str(&format!("    \"{label}\": {us:.1}{sep}\n"));
    }
    body.push_str("  },\n  \"speedup_vs_cloning_kernel\": {\n");
    let speedups = speedups_against(BASELINE_CLONING_KERNEL_US);
    for (i, (label, x)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        body.push_str(&format!("    \"{label}\": {x:.1}{sep}\n"));
    }
    body.push_str("  },\n  \"speedup_vs_rebuild_backfill\": {\n");
    let speedups = speedups_against(BASELINE_REBUILD_BACKFILL_US);
    for (i, (label, x)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        body.push_str(&format!("    \"{label}\": {x:.1}{sep}\n"));
    }
    body.push_str("  }\n}\n");
    match std::fs::write(path, &body) {
        Ok(()) => println!("wrote BENCH_scale.json"),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    simulate_fcfs_10k(&mut criterion);
    simulate_sjf_swf_replay(&mut criterion);
    placement_scan_mixed_class(&mut criterion);
    simulate_conservative_backfill_10k(&mut criterion);
    simulate_easy_backfill_10k(&mut criterion);
    simulate_conservative_backfill_100k(&mut criterion);
    calendar_reserve_10k(&mut criterion);
    simulate_fcfs_heavy_tail_100k(&mut criterion);
    view_build(&mut criterion);
    campaign_paper_grid_1k(&mut criterion);
    swf_stream_ingest_1m(&mut criterion);
    simulate_fcfs_polaris_synth_1m(&mut criterion);
    write_trend_file(&criterion);
}
