//! The `telemetry` bench group: the observability tax, measured.
//!
//! ```text
//! cargo bench -p rsched-bench --bench telemetry           # measure
//! cargo bench -p rsched-bench --bench telemetry -- --test # CI smoke (1 iter)
//! ```
//!
//! The headline pair is the 10k-job conservative-backfill simulation with
//! the sink disabled vs recording: the disabled figure must stay within
//! the `BENCH_scale.json` acceptance window for
//! `simulate_conservative_backfill_10k` (every sink call on that path is
//! one `Option` discriminant check), and the recording figure bounds what
//! a fully-instrumented run costs. The micro rows price the primitives
//! themselves: a million disabled span guards, a million recording
//! counter bumps, and a million log-histogram observations.

use criterion::Criterion;
use rsched_cluster::{ClusterConfig, JobSpec};
use rsched_schedulers::{ConservativeBackfill, Fcfs};
use rsched_sim::Simulation;
use rsched_telemetry::{LogHistogram, TelemetrySink};
use rsched_workloads::{scenario_builtins, ArrivalMode, ScenarioContext};

fn heavy_tail_jobs(n: usize) -> Vec<JobSpec> {
    scenario_builtins()
        .generate(
            "long_tail",
            &ScenarioContext::new(n)
                .with_mode(ArrivalMode::Static)
                .with_seed(7),
        )
        .expect("builtin scenario")
        .jobs
}

/// The scale-bench workload with the sink explicitly disabled — must match
/// `scale/simulate_conservative_backfill_10k` to within the noise floor.
fn conservative_10k_sink_off(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(10_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("conservative_10k_sink_off", |b| {
        b.iter(|| {
            let sink = TelemetrySink::disabled();
            std::hint::black_box(
                Simulation::new(cluster)
                    .jobs(&jobs)
                    .telemetry(&sink)
                    .run(&mut ConservativeBackfill::new())
                    .expect("completes"),
            )
        })
    });
    group.finish();
}

/// The same run fully instrumented: spans, per-epoch counters, and the
/// end-of-epoch counter harvest all live.
fn conservative_10k_sink_on(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(10_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("conservative_10k_sink_on", |b| {
        b.iter(|| {
            let sink = TelemetrySink::recording();
            std::hint::black_box(
                Simulation::new(cluster)
                    .jobs(&jobs)
                    .telemetry(&sink)
                    .run(&mut ConservativeBackfill::new())
                    .expect("completes"),
            )
        })
    });
    group.finish();
}

/// FCFS is the cheapest kernel loop, so it shows the worst-case *relative*
/// overhead of a recording sink.
fn fcfs_10k_sink_on(c: &mut Criterion) {
    let jobs = heavy_tail_jobs(10_000);
    let cluster = ClusterConfig::polaris();
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("fcfs_10k_sink_on", |b| {
        b.iter(|| {
            let sink = TelemetrySink::recording();
            std::hint::black_box(
                Simulation::new(cluster)
                    .jobs(&jobs)
                    .telemetry(&sink)
                    .run(&mut Fcfs::default())
                    .expect("completes"),
            )
        })
    });
    group.finish();
}

/// A million span guards on a disabled sink: the price of instrumenting a
/// hot path that nobody is watching.
fn disabled_span_1m(c: &mut Criterion) {
    let sink = TelemetrySink::disabled();
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("disabled_span_1m", |b| {
        b.iter(|| {
            for i in 0..1_000_000u64 {
                let _g = sink.span("bench.noop", rsched_simkit::SimTime::from_secs(i));
                std::hint::black_box(&_g);
            }
        })
    });
    group.finish();
}

/// A million counter bumps against a live registry (hashed name lookup +
/// saturating add), and a million log-histogram observations.
fn recording_primitives_1m(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("recording_count_1m", |b| {
        let sink = TelemetrySink::recording();
        b.iter(|| {
            for _ in 0..1_000_000u64 {
                sink.count("bench_counter_total", 1);
            }
            std::hint::black_box(sink.snapshot())
        })
    });
    group.bench_function("histogram_observe_1m", |b| {
        b.iter(|| {
            let mut hist = LogHistogram::new();
            for i in 0..1_000_000u64 {
                hist.record(i.wrapping_mul(104_729) % 10_000_000);
            }
            std::hint::black_box(hist.summary())
        })
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    conservative_10k_sink_off(&mut criterion);
    conservative_10k_sink_on(&mut criterion);
    fcfs_10k_sink_on(&mut criterion);
    disabled_span_1m(&mut criterion);
    recording_primitives_1m(&mut criterion);
    criterion.final_summary();
}
