//! Solver ablation (DESIGN.md §5): how much schedule quality each engine
//! buys on identical instances — priority-rule list scheduling alone, the
//! simulated-annealing stage, the genetic stage, and (small instances)
//! exact branch-and-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsched_cpsolver::anneal::{anneal, AnnealConfig};
use rsched_cpsolver::bnb::BranchAndBound;
use rsched_cpsolver::genetic::{evolve, GeneticConfig};
use rsched_cpsolver::listsched::{priority_order, PriorityRule};
use rsched_cpsolver::sgs::decode_with_makespan;
use rsched_cpsolver::{Instance, Task};

fn instance(n: usize, seed: u64) -> Instance {
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            let x = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i as u64 * 0xBF58476D1CE4E5B9);
            Task {
                id: i as u32,
                duration: 1_000 + x % 250_000,
                nodes: 1 + ((x >> 8) % 64) as u32,
                memory: 1 + (x >> 16) % 512,
                release: 0,
            }
        })
        .collect();
    Instance::new(tasks, 256, 2048)
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);

    for &n in &[8usize, 40, 100] {
        let inst = instance(n, 42);
        let seed_order = priority_order(&inst, PriorityRule::LongestFirst);

        group.bench_with_input(BenchmarkId::new("list_rules_only", n), &n, |b, _| {
            b.iter(|| {
                let mut best = u64::MAX;
                for rule in PriorityRule::all() {
                    let order = priority_order(&inst, rule);
                    let (_, mk) = decode_with_makespan(&inst, &order);
                    best = best.min(mk);
                }
                std::hint::black_box(best)
            })
        });

        group.bench_with_input(BenchmarkId::new("annealing_2k_iters", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(anneal(
                    &inst,
                    &seed_order,
                    &AnnealConfig {
                        iterations: 2_000,
                        seed: 7,
                        ..AnnealConfig::default()
                    },
                ))
            })
        });

        group.bench_with_input(BenchmarkId::new("genetic_40gen", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(evolve(
                    &inst,
                    std::slice::from_ref(&seed_order),
                    &GeneticConfig {
                        generations: 40,
                        seed: 7,
                        ..GeneticConfig::default()
                    },
                ))
            })
        });

        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("branch_and_bound", n), &n, |b, _| {
                b.iter(|| std::hint::black_box(BranchAndBound::default().solve(&inst, &seed_order)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
