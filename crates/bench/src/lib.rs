//! # rsched-bench
//!
//! Criterion benchmark harness for the `reasoned-scheduler` workspace.
//!
//! Bench targets (`cargo bench -p rsched-bench`):
//!
//! * `figures` — one group per paper figure (3–8), each benchmarking the
//!   full regeneration pipeline at reduced scale (the binaries in
//!   `rsched-experiments` regenerate the full-scale figures; these benches
//!   track the *cost* of each experiment).
//! * `micro` — hot-path microbenchmarks: event-queue throughput, first-fit
//!   allocation, SGS decoding, prompt rendering/parsing, the action
//!   grammar, and a full agent decision step.
//! * `solver_ablation` — the design-choice ablation DESIGN.md calls out:
//!   priority rules vs simulated annealing vs the genetic stage vs exact
//!   branch-and-bound on identical instances.
//! * `scale` — archive-scale replays, from 10k-job simulations through
//!   the 1M tier (streaming SWF ingest + a 1M-job FCFS replay of the
//!   synthetic Polaris stream); rewrites `BENCH_scale.json` at the
//!   workspace root on a full measurement run.
//! * `service` — the daemon front door: admission throughput and
//!   decision-tick latency; rewrites `BENCH_service.json`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

/// Shared reduced-scale experiment options for the figure benches.
pub fn bench_options() -> rsched_experiments::ExperimentOptions {
    rsched_experiments::ExperimentOptions {
        seed: 2025,
        quick: true,
        solver: rsched_cpsolver::SolverConfig {
            sa_iterations_per_task: 50,
            sa_iteration_cap: 1_000,
            exact_max_tasks: 6,
            ..rsched_cpsolver::SolverConfig::default()
        },
    }
}
