//! The work-stealing pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
}

/// A fixed-size work-stealing thread pool.
///
/// Tasks are `'static` closures; results flow back through channels (see
/// [`ThreadPool::par_map`]). Dropping the pool drains nothing: it signals
/// shutdown and joins the workers, so submit-side code should finish its
/// batches (e.g. via `par_map`) before letting the pool go.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let workers: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Task>> = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wakeup: Condvar::new(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rsched-worker-{index}"))
                    .spawn(move || worker_loop(index, local, shared))
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// A pool sized to the machine: one worker per available hardware
    /// thread ([`std::thread::available_parallelism`]), clamped to at
    /// least 1 when the count cannot be determined.
    pub fn available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(threads)
    }

    /// A pool sized to the machine (`available_parallelism`, min 1).
    #[deprecated(
        since = "0.1.0",
        note = "renamed to `ThreadPool::available_parallelism`"
    )]
    pub fn with_default_parallelism() -> Self {
        ThreadPool::available_parallelism()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submit one fire-and-forget task.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, task: F) {
        self.shared.injector.push(Box::new(task));
        self.shared.wakeup.notify_one();
    }

    /// Map `f` over `items` in parallel, preserving order.
    ///
    /// # Panics
    /// If any task panics, the panic is re-raised here with its message.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        for (index, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                // The receiver may have bailed on an earlier panic; a send
                // failure is then expected and ignorable.
                let _ = tx.send((index, result));
            });
        }
        drop(tx);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (index, result) in rx {
            match result {
                Ok(value) => results[index] = Some(value),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} never delivered a result")))
            .collect()
    }

    /// Gracefully shut the pool down: signal the workers and join every
    /// thread. Queued tasks that a worker has already picked up (or can
    /// pick up before observing the signal) still run; parked workers wake
    /// and exit.
    ///
    /// Idempotent — a second call (or the implicit one in `Drop`) is a
    /// no-op. Long-lived owners like the service daemon call this
    /// explicitly so shutdown happens at a chosen point with any join
    /// panics surfaced here rather than during unwinding.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wakeup.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// `true` once [`shutdown`](Self::shutdown) has joined the workers.
    pub fn is_shut_down(&self) -> bool {
        self.handles.is_empty()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(index: usize, local: Worker<Task>, shared: Arc<Shared>) {
    loop {
        if let Some(task) = find_task(index, &local, &shared) {
            // A panicking task must not kill the worker; par_map transports
            // the payload separately.
            let _ = catch_unwind(AssertUnwindSafe(task));
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Nothing to do: park until a push or shutdown wakes us. The
        // timeout re-checks for missed wakeups.
        let mut guard = shared.sleep_lock.lock();
        if shared.shutdown.load(Ordering::SeqCst) || !shared.injector.is_empty() {
            continue;
        }
        shared.wakeup.wait_for(&mut guard, Duration::from_millis(5));
    }
}

fn find_task(index: usize, local: &Worker<Task>, shared: &Shared) -> Option<Task> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    // Refill from the injector (batch steal amortizes contention), then try
    // peers.
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(task) => return Some(task),
            crossbeam::deque::Steal::Empty => break,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
    let peers = shared.stealers.len();
    for offset in 1..peers {
        let victim = (index + offset) % peers;
        loop {
            match shared.stealers[victim].steal() {
                crossbeam::deque::Steal::Success(task) => return Some(task),
                crossbeam::deque::Steal::Empty => break,
                crossbeam::deque::Steal::Retry => continue,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.par_map((0..200).collect(), |x: i32| x * x);
        assert_eq!(out, (0..200).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let pool = ThreadPool::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let out = pool.par_map((0..1000).collect::<Vec<u32>>(), move |_| {
            c.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn work_actually_runs_concurrently() {
        let pool = ThreadPool::new(4);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (inf, pk) = (Arc::clone(&in_flight), Arc::clone(&peak));
        pool.par_map((0..16).collect::<Vec<u32>>(), move |_| {
            let now = inf.fetch_add(1, Ordering::SeqCst) + 1;
            pk.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(20));
            inf.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "peak concurrency {} suggests serial execution",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(vec![1, 2, 3], |x| {
                if x == 2 {
                    panic!("boom on {x}");
                }
                x
            })
        }));
        assert!(result.is_err(), "panic must propagate");
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        let pool = ThreadPool::new(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(vec![1], |_| panic!("first batch dies"))
        }));
        // The pool must still process subsequent work.
        let out = pool.par_map(vec![10, 20], |x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let out = pool.par_map((0..50).collect(), |x: u64| x * 2);
        assert_eq!(out.len(), 50);
        assert_eq!(out[49], 98);
    }

    #[test]
    fn empty_input() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        pool.par_map(vec![1, 2, 3], |x| x);
        drop(pool); // must not hang
    }

    #[test]
    fn explicit_shutdown_joins_and_is_idempotent() {
        let mut pool = ThreadPool::new(3);
        assert!(!pool.is_shut_down());
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.par_map((0..64).collect::<Vec<u32>>(), move |_| {
            c.fetch_add(1, Ordering::SeqCst)
        });
        pool.shutdown();
        assert!(pool.is_shut_down());
        assert_eq!(counter.load(Ordering::SeqCst), 64, "batch ran fully");
        // Second call (and the implicit Drop) must be no-ops, not hangs.
        pool.shutdown();
        assert!(pool.is_shut_down());
        drop(pool);
    }

    #[test]
    fn merge_order_is_input_order_for_every_worker_count() {
        // The sharded-campaign contract: results come back in input
        // (grid) order no matter how many workers race, because par_map
        // slots each result by index on the channel's receive side. Tasks
        // sleep in a scrambled pattern so completion order actively
        // disagrees with submission order.
        let reference: Vec<String> = (0..48u64).map(|i| format!("cell-{i}")).collect();
        let mut outputs = Vec::new();
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for workers in [1usize, 2, machine] {
            let pool = ThreadPool::new(workers);
            let out = pool.par_map((0..48u64).collect::<Vec<_>>(), |i| {
                // Later tasks finish earlier (up to pool width), inverting
                // arrival order within every stretch of concurrent tasks.
                std::thread::sleep(Duration::from_millis(7 - (i % 8).min(7)));
                format!("cell-{i}")
            });
            assert_eq!(out, reference, "workers {workers}");
            outputs.push(out);
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "identical merge across 1, 2, and {machine} workers"
        );
    }

    #[test]
    fn default_parallelism_is_positive() {
        let pool = ThreadPool::available_parallelism();
        assert!(pool.threads() >= 1);
        #[allow(deprecated)]
        let legacy = ThreadPool::with_default_parallelism();
        assert_eq!(legacy.threads(), pool.threads());
    }
}
