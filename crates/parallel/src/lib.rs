//! # rsched-parallel
//!
//! A small work-stealing thread pool used to fan the experiment matrix
//! (scheduler × scenario × size × seed) across cores. Each experiment cell
//! stays single-threaded and deterministic; only the sweep is parallel.
//!
//! Built from scratch on `crossbeam`'s work-stealing deques and
//! `parking_lot` parking, in the spirit of the workspace's hpc-parallel
//! guides (Rayon's architecture, *Rust Atomics and Locks*' discipline):
//!
//! * one local [`Worker`](crossbeam::deque::Worker) deque per thread,
//! * a shared [`Injector`](crossbeam::deque::Injector) for external
//!   submissions,
//! * random-order stealing between workers,
//! * condvar parking when the system runs dry.
//!
//! [`ThreadPool::par_map`] returns results in **input order** no matter
//! which worker finished first — the foundation of the sharded campaign
//! contract: `summary.json` is byte-identical for every worker count.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod pool;

pub use pool::ThreadPool;
