//! The scheduler daemon: a [`ServiceCore`] on its own thread.
//!
//! [`ServiceDaemon::spawn`] starts the service loop on a dedicated
//! `rsched-service` thread and hands back a cloneable [`SubmitHandle`] for
//! producers. Policies are built *on* the daemon thread from a `Send`
//! factory (a `Box<dyn SchedulingPolicy>` itself need not be `Send` — the
//! registry's LLM-backed policies hold `Rc` state), so any registry policy
//! can serve.
//!
//! Shutdown is graceful by construction: [`drain`](ServiceDaemon::drain)
//! enqueues a drain request, the core finishes ingesting, places or
//! finishes every admitted job, and the thread returns its
//! [`ServiceReport`]. Dropping the daemon without calling `drain` performs
//! the same sequence best-effort.

use std::thread::JoinHandle;

use rsched_sim::{SchedulingPolicy, SimError};

use crate::clock::ServiceClock;
use crate::core::{ServiceConfig, ServiceCore, ServiceReport};
use crate::ingest::{ingest_channel, SubmitHandle};

/// A running scheduler service thread.
pub struct ServiceDaemon {
    handle: SubmitHandle,
    thread: Option<JoinHandle<Result<ServiceReport, SimError>>>,
}

impl ServiceDaemon {
    /// Spawn the service loop on a new thread. The clock provides the
    /// service's time base (a [`crate::WallClock`] for production, a
    /// cloned [`crate::ManualClock`] for deterministic tests); `make`
    /// builds the policy on the daemon thread.
    pub fn spawn<C, F>(config: ServiceConfig, mut clock: C, make: F) -> Self
    where
        C: ServiceClock + 'static,
        F: FnOnce() -> Box<dyn SchedulingPolicy> + Send + 'static,
    {
        let (handle, rx) = ingest_channel();
        let thread = std::thread::Builder::new()
            .name("rsched-service".to_string())
            .spawn(move || {
                let start = clock.now();
                let core = ServiceCore::with_receiver(config, make(), rx, start);
                core.run(&mut clock, &mut [])
            })
            .expect("spawn rsched-service thread");
        ServiceDaemon {
            handle,
            thread: Some(thread),
        }
    }

    /// A handle for submitting jobs and requesting a drain. Clone freely;
    /// every clone feeds the same daemon.
    pub fn handle(&self) -> SubmitHandle {
        self.handle.clone()
    }

    /// Request a graceful drain and wait for the daemon to finish every
    /// admitted job, returning its final report.
    pub fn drain(mut self) -> Result<ServiceReport, SimError> {
        let _ = self.handle.drain();
        let thread = self.thread.take().expect("daemon thread still attached");
        match thread.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// `true` until the daemon thread has been joined.
    pub fn is_running(&self) -> bool {
        self.thread.is_some()
    }
}

impl Drop for ServiceDaemon {
    /// Best-effort graceful shutdown: request a drain and join, discarding
    /// the report. Panics from the daemon thread are swallowed here (a
    /// `Drop` must not panic during unwinding); call
    /// [`drain`](ServiceDaemon::drain) to observe them.
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = self.handle.drain();
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::tenant::TenantId;
    use rsched_cluster::{ClusterConfig, JobSpec};
    use rsched_schedulers::Fcfs;
    use rsched_simkit::{SimDuration, SimTime};

    fn job(id: u32, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            0,
            SimTime::ZERO,
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    #[test]
    fn daemon_drains_a_burst_on_a_manual_clock() {
        let config = ServiceConfig::new(ClusterConfig::new(4, 64));
        let clock = ManualClock::new();
        let external = clock.clone();
        let daemon = ServiceDaemon::spawn(config, clock, || Box::new(Fcfs::default()));
        let handle = daemon.handle();
        for id in 1..=20 {
            handle.submit(TenantId(0), job(id, 10, 1)).unwrap();
        }
        // The manual clock jumps to the next event whenever the daemon
        // goes idle, so no external advancing is strictly required — but
        // nudge it anyway to exercise the shared-clock path.
        external.advance_by(SimDuration::from_millis(1));
        let report = daemon.drain().expect("drains cleanly");
        assert_eq!(report.submitted, 20);
        assert_eq!(report.admitted, 20);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.completed, 20);
        assert_eq!(report.dropped_requests, 0);
    }

    #[test]
    fn drop_joins_the_daemon_thread() {
        let config = ServiceConfig::new(ClusterConfig::new(4, 64));
        let daemon = ServiceDaemon::spawn(config, ManualClock::new(), || Box::new(Fcfs::default()));
        daemon.handle().submit(TenantId(1), job(1, 5, 2)).unwrap();
        drop(daemon);
    }
}
