//! The service core: the decision kernel wrapped in an ingest-admit-tick
//! loop.
//!
//! [`ServiceCore`] is the single-threaded heart of the daemon. Each
//! [`tick`](ServiceCore::tick) at service time `now`:
//!
//! 1. **ingests** up to [`max_batch`](ServiceConfig::max_batch) requests
//!    from the MPSC channel, pushing each admitted job into the kernel's
//!    waiting queue at its fair-share rank and bouncing the rest with
//!    typed [`AdmissionError`]s;
//! 2. **retires** every completion event scheduled at or before `now`, at
//!    its exact event time (the cluster ledger audits this);
//! 3. runs **one decision epoch** — the same
//!    [`KernelState::run_epoch`] the virtual-time simulator uses — and
//!    streams the new decisions to the [`ServiceObserver`]s.
//!
//! Drive it with [`run`](ServiceCore::run) and a [`ServiceClock`] for a
//! long-running daemon, or call `tick` directly at chosen instants for
//! deterministic replays (`crate::replay`).

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use crossbeam::channel::{Receiver, TryRecvError};
use rsched_cluster::{ClusterConfig, JobId};
use rsched_sim::kernel::KernelState;
use rsched_sim::{
    job_is_feasible, Action, SchedulingPolicy, SimError, SimEvent, SimOptions, SimOutcome, SimStats,
};
use rsched_simkit::{SimDuration, SimTime};
use rsched_telemetry::{export, MetricsRegistry, TelemetrySink};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionError};
use crate::clock::ServiceClock;
use crate::ingest::{ingest_channel, ServiceRequest, Submission, SubmitHandle};
use crate::observer::{ServiceObserver, TickStats};
use crate::telemetry::{LatencyRecorder, LatencySummary};
use crate::tenant::TenantId;

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// The machine being scheduled.
    pub cluster: ClusterConfig,
    /// Tick interval: the bound on how long an ingested submission waits
    /// for its first decision epoch.
    pub tick: SimDuration,
    /// Maximum channel requests ingested per tick. A saturated tick is
    /// followed by an immediate re-tick instead of a sleep, so a backlog
    /// drains at full speed while each epoch stays bounded.
    pub max_batch: usize,
    /// Kernel options. The default raises
    /// [`max_queries`](SimOptions::max_queries) to effectively unlimited —
    /// a daemon serves queries forever.
    pub sim: SimOptions,
    /// Admission control and fair-share settings.
    pub admission: AdmissionConfig,
    /// Overwrite each admitted job's `submit` with its admission time.
    /// Live daemons keep this `true` so client-supplied timestamps cannot
    /// reorder the queue or corrupt wait metrics; deterministic replays
    /// set it `false` to preserve the trace's own submit times.
    pub restamp_submit: bool,
    /// Keep the full decision log inside the kernel (for
    /// [`ServiceCore::into_outcome`]). Live daemons leave this `false` so
    /// the log is drained every tick and memory stays bounded.
    pub retain_history: bool,
    /// Replay mode: the exact number of jobs that will be submitted. With
    /// `Some(n)`, the policy sees the same `pending_arrivals`/`total_jobs`
    /// the simulator would show, enabling its final `Stop`; with `None`
    /// (live mode), arrivals are open-ended and `Stop` is only offered
    /// once the service is draining.
    pub expected_jobs: Option<usize>,
}

impl ServiceConfig {
    /// Defaults for a live daemon on the given machine: 100 ms ticks,
    /// 4096-request batches, permissive admission, unbounded queries.
    pub fn new(cluster: ClusterConfig) -> Self {
        ServiceConfig {
            cluster,
            tick: SimDuration::from_millis(100),
            max_batch: 4096,
            sim: SimOptions {
                max_queries: usize::MAX,
                ..SimOptions::default()
            },
            admission: AdmissionConfig::default(),
            restamp_submit: true,
            retain_history: false,
            expected_jobs: None,
        }
    }
}

/// Final accounting for a service run, delivered on drain.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Submissions ingested from the channel (admitted + rejected).
    pub submitted: usize,
    /// Submissions admitted to the waiting queue.
    pub admitted: usize,
    /// Submissions rejected with a typed [`AdmissionError`].
    pub rejected: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Requests left unread in the channel at shutdown (0 for a clean
    /// drain).
    pub dropped_requests: usize,
    /// Ticks executed.
    pub ticks: u64,
    /// Service time at shutdown.
    pub end_time: SimTime,
    /// Kernel counters (queries, placements, backfills, …).
    pub stats: SimStats,
    /// Wall-clock decision-tick latency aggregates.
    pub tick_latency: LatencySummary,
}

/// The single-threaded scheduler service around one [`KernelState`].
pub struct ServiceCore {
    config: ServiceConfig,
    kernel: KernelState,
    admission: AdmissionController,
    policy: Box<dyn SchedulingPolicy>,
    rx: Receiver<ServiceRequest>,
    /// Every id ever admitted (global duplicate detection, mirroring the
    /// simulator's workload validation).
    seen: BTreeSet<JobId>,
    /// Admitting tenant of each job currently waiting or running.
    tenant_of: BTreeMap<JobId, TenantId>,
    draining: bool,
    /// Whether the last ingest pass emptied the channel (vs. stopping at
    /// the batch cap).
    channel_drained: bool,
    /// Completed records already streamed to observers.
    completed_streamed: usize,
    submitted: usize,
    admitted: usize,
    rejected: usize,
    ticks: u64,
    latency: LatencyRecorder,
    last_now: SimTime,
    /// Shared telemetry sink; disabled by default (one pointer check per
    /// call site). [`set_telemetry`](ServiceCore::set_telemetry) installs a
    /// recording sink into both the service and its kernel.
    telemetry: TelemetrySink,
}

impl ServiceCore {
    /// A core plus the [`SubmitHandle`] clients use to reach it.
    pub fn new(
        config: ServiceConfig,
        policy: Box<dyn SchedulingPolicy>,
        start: SimTime,
    ) -> (Self, SubmitHandle) {
        let (handle, rx) = ingest_channel();
        (Self::with_receiver(config, policy, rx, start), handle)
    }

    /// A core over an existing ingest receiver (the daemon constructs the
    /// channel on the caller side and the core on its own thread).
    pub fn with_receiver(
        config: ServiceConfig,
        policy: Box<dyn SchedulingPolicy>,
        rx: Receiver<ServiceRequest>,
        start: SimTime,
    ) -> Self {
        ServiceCore {
            kernel: KernelState::new(config.cluster, start),
            admission: AdmissionController::new(config.admission),
            policy,
            rx,
            seen: BTreeSet::new(),
            tenant_of: BTreeMap::new(),
            draining: false,
            channel_drained: true,
            completed_streamed: 0,
            submitted: 0,
            admitted: 0,
            rejected: 0,
            ticks: 0,
            latency: LatencyRecorder::new(),
            last_now: start,
            telemetry: TelemetrySink::disabled(),
            config,
        }
    }

    /// Attach a telemetry sink (a cheap clone of the caller's handle) to
    /// both the service loop and the decision kernel, so tick latency,
    /// admission counters, and the kernel's epoch/placement families all
    /// land in one shared metrics namespace.
    pub fn set_telemetry(&mut self, sink: &TelemetrySink) {
        self.telemetry = sink.clone();
        self.kernel.set_telemetry(sink.clone());
    }

    /// The attached telemetry sink (disabled unless
    /// [`set_telemetry`](ServiceCore::set_telemetry) was called).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// The kernel (read-only), for inspection and tests.
    pub fn kernel(&self) -> &KernelState {
        &self.kernel
    }

    /// The admission controller, e.g. to install tenant profiles before
    /// (or between) ticks.
    pub fn admission_mut(&mut self) -> &mut AdmissionController {
        &mut self.admission
    }

    /// `true` once a drain request has been seen (or every producer hung
    /// up).
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// `true` when the service has drained completely: no ingestable
    /// requests, nothing waiting, nothing running.
    pub fn finished(&self) -> bool {
        self.draining
            && self.channel_drained
            && self.rx.is_empty()
            && self.kernel.waiting_len() == 0
            && self.kernel.running_count() == 0
            && self.kernel.events_is_empty()
    }

    fn pending_hint(&self) -> usize {
        match self.config.expected_jobs {
            // Replay mode: exactly the simulator's pending-arrival count.
            Some(total) => total.saturating_sub(self.admitted),
            // Live mode: arrivals are open-ended until the drain finishes
            // emptying the channel; the nonzero sentinel keeps policies
            // from issuing their final `Stop` prematurely.
            None => {
                if self.draining && self.channel_drained && self.rx.is_empty() {
                    0
                } else {
                    1
                }
            }
        }
    }

    fn total_jobs_hint(&self) -> usize {
        self.config.expected_jobs.unwrap_or(self.admitted)
    }

    fn handle_submission(
        &mut self,
        sub: Submission,
        now: SimTime,
        observers: &mut [&mut dyn ServiceObserver],
    ) -> bool {
        let Submission { tenant, mut job } = sub;
        let verdict = if self.draining {
            Err(AdmissionError::Draining)
        } else if self.seen.contains(&job.id) {
            Err(AdmissionError::DuplicateId(job.id))
        } else if !job_is_feasible(self.config.cluster, &job) {
            Err(AdmissionError::Infeasible {
                id: job.id,
                nodes: job.nodes,
                memory_gb: job.memory_gb,
            })
        } else {
            self.admission.admit(tenant, &job, now)
        };
        match verdict {
            Ok(rank) => {
                if self.config.restamp_submit {
                    job.submit = now;
                }
                self.seen.insert(job.id);
                self.tenant_of.insert(job.id, tenant);
                for observer in observers.iter_mut() {
                    observer.on_admit(tenant, &job, now);
                }
                self.kernel.arrive_ranked(job, rank);
                self.admitted += 1;
                true
            }
            Err(reason) => {
                for observer in observers.iter_mut() {
                    observer.on_reject(tenant, &job, &reason, now);
                }
                if self.telemetry.is_enabled() {
                    let name = format!("service_rejected_{}_total", reason.code());
                    self.telemetry.count(&name, 1);
                }
                self.rejected += 1;
                false
            }
        }
    }

    /// One service tick at time `now` (which must not move backwards).
    /// Returns the tick's aggregates; errors are kernel-level
    /// ([`SimError::QueryBudgetExhausted`] under a bounded query budget).
    pub fn tick(
        &mut self,
        now: SimTime,
        observers: &mut [&mut dyn ServiceObserver],
    ) -> Result<TickStats, SimError> {
        let wall_start = Instant::now();
        let now = now.max(self.last_now);
        let _tick_span = self.telemetry.span("service.tick", now);
        self.ticks += 1;

        // 1. Ingest a bounded batch from the channel.
        let mut ingested = 0usize;
        let mut tick_admitted = 0usize;
        let mut tick_rejected = 0usize;
        let mut exhausted = false;
        while ingested < self.config.max_batch {
            match self.rx.try_recv() {
                Ok(ServiceRequest::Submit(sub)) => {
                    ingested += 1;
                    if self.handle_submission(sub, now, observers) {
                        tick_admitted += 1;
                    } else {
                        tick_rejected += 1;
                    }
                }
                Ok(ServiceRequest::Drain) => {
                    self.draining = true;
                }
                Err(TryRecvError::Empty) => {
                    exhausted = true;
                    break;
                }
                Err(TryRecvError::Disconnected) => {
                    // Every producer hung up: nothing can ever arrive, so
                    // finish what we have and shut down.
                    self.draining = true;
                    exhausted = true;
                    break;
                }
            }
        }
        self.channel_drained = exhausted;
        self.submitted += ingested;

        // 2. Retire completions at their exact event times (the cluster
        // ledger audits end-time exactness).
        let mut completions = 0usize;
        while let Some(t) = self.kernel.next_event_time() {
            if t > now {
                break;
            }
            for event in self.kernel.pop_events_at(t) {
                match event {
                    SimEvent::Completion(id) => {
                        self.kernel.complete(id, t);
                        self.tenant_of.remove(&id);
                        completions += 1;
                    }
                    // The service kernel schedules no Arrival events;
                    // arrivals come from the channel.
                    SimEvent::Arrival(_) => unreachable!("service kernels have no arrival events"),
                }
            }
            self.kernel.observe_time(t);
        }
        for record in &self.kernel.completed()[self.completed_streamed..] {
            for observer in observers.iter_mut() {
                observer.on_completion(record);
            }
        }
        self.completed_streamed = self.kernel.completed_len();
        self.kernel.observe_time(now);

        // 3. One decision epoch, if the kernel wants one.
        let pending = self.pending_hint();
        let mut decisions = 0usize;
        let mut verdict = Ok(());
        if self.kernel.should_query(now, pending, &self.config.sim) {
            let first_new = self.kernel.decisions_len();
            verdict = self.kernel.run_epoch(
                now,
                pending,
                self.total_jobs_hint(),
                &mut *self.policy,
                &self.config.sim,
            );
            // Stream decisions (even on error) and release the queue-cap
            // slots of every accepted placement.
            for record in &self.kernel.decisions()[first_new..] {
                if record.accepted() {
                    if let Action::StartJob(id) | Action::BackfillJob(id) = record.action {
                        if let Some(tenant) = self.tenant_of.get(&id) {
                            self.admission.job_started(*tenant);
                        }
                    }
                }
                for observer in observers.iter_mut() {
                    observer.on_decision(record);
                }
            }
            decisions = self.kernel.decisions_len() - first_new;
            if !self.config.retain_history {
                let _ = self.kernel.drain_decisions();
                let _ = self.kernel.drain_epochs();
            }
        }

        let wall_nanos = wall_start.elapsed().as_nanos() as u64;
        self.latency.record(wall_nanos);
        if self.telemetry.is_enabled() {
            self.telemetry.observe("service_tick_nanos", wall_nanos);
            self.telemetry
                .set_counter("service_submitted_total", self.submitted as u64);
            self.telemetry
                .set_counter("service_admitted_total", self.admitted as u64);
            self.telemetry
                .set_counter("service_rejected_total", self.rejected as u64);
            self.telemetry.set_counter(
                "service_completed_total",
                self.kernel.completed_len() as u64,
            );
            self.telemetry
                .set_counter("service_ticks_total", self.ticks);
            self.telemetry
                .set_gauge("service_queue_depth", self.kernel.waiting_len() as i64);
            self.telemetry
                .set_gauge("service_running_jobs", self.kernel.running_count() as i64);
        }
        let stats = TickStats {
            now,
            submitted: ingested,
            admitted: tick_admitted,
            rejected: tick_rejected,
            completions,
            decisions,
            queue_depth: self.kernel.waiting_len(),
            running: self.kernel.running_count(),
            wall_nanos,
        };
        for observer in observers.iter_mut() {
            observer.on_tick(&stats);
        }
        self.last_now = now;
        verdict?;
        Ok(stats)
    }

    /// Run the service to completion on `clock`: tick, advance, repeat,
    /// until a drain finishes (or the kernel errors). Saturated ticks
    /// (full ingest batch) re-tick immediately instead of sleeping.
    pub fn run<C: ServiceClock>(
        mut self,
        clock: &mut C,
        observers: &mut [&mut dyn ServiceObserver],
    ) -> Result<ServiceReport, SimError> {
        loop {
            let now = clock.now().max(self.last_now);
            let stats = self.tick(now, observers)?;
            if self.finished() {
                break;
            }
            // Draining with jobs waiting, nothing running, and no future
            // events: no epoch will ever place them (the policy had its
            // chance this tick) — the same Stuck verdict the simulator
            // gives a policy that delays forever.
            if self.draining
                && self.channel_drained
                && self.rx.is_empty()
                && self.kernel.events_is_empty()
                && self.kernel.running_count() == 0
                && self.kernel.waiting_len() > 0
            {
                return Err(SimError::Stuck {
                    time: now,
                    waiting: self.kernel.waiting_len(),
                });
            }
            if stats.submitted >= self.config.max_batch {
                continue;
            }
            clock.advance(self.config.tick, self.kernel.next_event_time());
        }
        let report = self.finish();
        for observer in observers.iter_mut() {
            observer.on_drain(&report);
        }
        Ok(report)
    }

    fn finish(self) -> ServiceReport {
        ServiceReport {
            submitted: self.submitted,
            admitted: self.admitted,
            rejected: self.rejected,
            completed: self.kernel.completed_len(),
            dropped_requests: self.rx.len(),
            ticks: self.ticks,
            end_time: self.last_now,
            stats: *self.kernel.stats(),
            tick_latency: self.latency.summary(),
        }
    }

    /// Render the service's current metrics in Prometheus text exposition
    /// format (family prefix `rsched_`). With a recording sink attached the
    /// shared registry is scraped directly — kernel, observer, and service
    /// families together; with the default disabled sink a one-off registry
    /// is built from the service counters and tick-latency histogram, so
    /// `/metrics` always answers.
    pub fn prometheus_text(&self) -> String {
        if let Some(snapshot) = self.telemetry.snapshot() {
            return export::prometheus(&snapshot, "rsched_");
        }
        let mut registry = MetricsRegistry::new();
        registry.set_counter("service_submitted_total", self.submitted as u64);
        registry.set_counter("service_admitted_total", self.admitted as u64);
        registry.set_counter("service_rejected_total", self.rejected as u64);
        registry.set_counter(
            "service_completed_total",
            self.kernel.completed_len() as u64,
        );
        registry.set_counter("service_ticks_total", self.ticks);
        registry.set_gauge("service_queue_depth", self.kernel.waiting_len() as i64);
        registry.set_gauge("service_running_jobs", self.kernel.running_count() as i64);
        registry.install_histogram("service_tick_nanos", self.latency.histogram());
        export::prometheus(&registry.snapshot(), "rsched_")
    }

    /// Close the run and produce a simulator-shaped [`SimOutcome`]
    /// (requires [`retain_history`](ServiceConfig::retain_history) for a
    /// populated decision log). This is how the replay driver proves
    /// bit-equivalence with the virtual-time simulator.
    pub fn into_outcome(self) -> SimOutcome {
        let end = self.last_now;
        let name = self.policy.name().to_string();
        self.kernel.into_outcome(name, end)
    }
}
