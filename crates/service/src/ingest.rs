//! The submission front-end: a lock-free-style MPSC channel between any
//! number of client threads and the single scheduler loop.
//!
//! Producers hold cloneable [`SubmitHandle`]s; the service core drains the
//! channel in bounded batches at each tick, so a submission's decision
//! latency is bounded by one tick interval plus the epoch itself.

use crossbeam::channel::{self, Receiver, Sender};
use rsched_cluster::JobSpec;

use crate::tenant::TenantId;

/// One job submission from one tenant.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The job being submitted.
    pub job: JobSpec,
}

/// A message on the ingest channel.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Submit a job.
    Submit(Submission),
    /// Stop accepting work, finish what is queued and running, then shut
    /// down. Submissions arriving after this are rejected as
    /// [`Draining`](crate::AdmissionError::Draining).
    Drain,
}

/// Sending a request failed: the service loop has exited and dropped its
/// receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStopped;

impl std::fmt::Display for ServiceStopped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the scheduler service has stopped")
    }
}

impl std::error::Error for ServiceStopped {}

/// A client-side handle for submitting jobs to a running service. Clone
/// freely; each clone is an independent producer.
#[derive(Clone)]
pub struct SubmitHandle {
    tx: Sender<ServiceRequest>,
}

impl SubmitHandle {
    /// Submit one job on behalf of `tenant`.
    pub fn submit(&self, tenant: TenantId, job: JobSpec) -> Result<(), ServiceStopped> {
        self.tx
            .send(ServiceRequest::Submit(Submission { tenant, job }))
            .map_err(|_| ServiceStopped)
    }

    /// Ask the service to drain: reject new work, finish queued and
    /// running jobs, then stop.
    pub fn drain(&self) -> Result<(), ServiceStopped> {
        self.tx
            .send(ServiceRequest::Drain)
            .map_err(|_| ServiceStopped)
    }

    /// Requests currently buffered in the channel (not yet ingested).
    pub fn backlog(&self) -> usize {
        self.tx.len()
    }
}

/// Create the ingest channel: a handle for producers and the receiver the
/// service core drains.
pub(crate) fn ingest_channel() -> (SubmitHandle, Receiver<ServiceRequest>) {
    let (tx, rx) = channel::unbounded();
    (SubmitHandle { tx }, rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::TryRecvError;
    use rsched_simkit::{SimDuration, SimTime};

    #[test]
    fn handle_feeds_the_receiver_across_threads() {
        let (handle, rx) = ingest_channel();
        let mut producers = Vec::new();
        for t in 0..3u32 {
            let h = handle.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let job = JobSpec::new(
                        t * 1000 + i,
                        t,
                        SimTime::ZERO,
                        SimDuration::from_secs(10),
                        1,
                        1,
                    );
                    h.submit(TenantId(t), job).unwrap();
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        handle.drain().unwrap();
        let mut submits = 0;
        let mut drains = 0;
        loop {
            match rx.try_recv() {
                Ok(ServiceRequest::Submit(_)) => submits += 1,
                Ok(ServiceRequest::Drain) => drains += 1,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        assert_eq!(submits, 300);
        assert_eq!(drains, 1);
    }

    #[test]
    fn submit_after_service_exit_reports_stopped() {
        let (handle, rx) = ingest_channel();
        drop(rx);
        let job = JobSpec::new(1, 0, SimTime::ZERO, SimDuration::from_secs(1), 1, 1);
        assert_eq!(handle.submit(TenantId(0), job), Err(ServiceStopped));
        assert_eq!(handle.drain(), Err(ServiceStopped));
    }
}
