//! Deterministic trace replay through the service driver.
//!
//! [`replay`] pushes a simulator workload through a [`ServiceCore`] on a
//! [`ManualClock`], ticking at **exactly** the virtual-time simulator's
//! event times (job arrivals and completions) with admission wide open and
//! fair-share off. Under those settings every admitted job lands in the
//! waiting queue at rank 0 — the queue order, the `SystemView` the policy
//! sees, and therefore every decision, record, and statistic are identical
//! to `rsched_sim::run_simulation` on the same inputs. The
//! `service_sim_equivalence` integration test pins this claim across the
//! whole builtin-policy registry.

use rsched_cluster::{ClusterConfig, JobSpec};
use rsched_sim::{validate_workload, SchedulingPolicy, SimError, SimOptions, SimOutcome};
use rsched_simkit::SimTime;

use crate::clock::{ManualClock, ServiceClock};
use crate::core::{ServiceConfig, ServiceCore};
use crate::observer::ServiceObserver;
use crate::tenant::TenantId;

/// Replay `jobs` through the service driver and return a simulator-shaped
/// [`SimOutcome`]. Tenant identity is taken from each job's `user` field;
/// admission is permissive (no rate limits, no caps, fair-share off), so
/// the run is bit-equivalent to the virtual-time simulator.
pub fn replay(
    config: ClusterConfig,
    jobs: &[JobSpec],
    policy: Box<dyn SchedulingPolicy>,
    options: &SimOptions,
    observers: &mut [&mut dyn ServiceObserver],
) -> Result<SimOutcome, SimError> {
    replay_with_telemetry(
        config,
        jobs,
        policy,
        options,
        observers,
        &rsched_telemetry::TelemetrySink::disabled(),
    )
}

/// [`replay`] with a telemetry sink attached to the service core (and
/// through it the decision kernel): spans, metrics, and epoch provenance
/// accumulate in the sink while the outcome stays bit-equivalent to the
/// virtual-time simulator.
pub fn replay_with_telemetry(
    config: ClusterConfig,
    jobs: &[JobSpec],
    policy: Box<dyn SchedulingPolicy>,
    options: &SimOptions,
    observers: &mut [&mut dyn ServiceObserver],
    telemetry: &rsched_telemetry::TelemetrySink,
) -> Result<SimOutcome, SimError> {
    validate_workload(config, jobs)?;
    let start = jobs.iter().map(|j| j.submit).min().unwrap_or(SimTime::ZERO);

    let service_config = ServiceConfig {
        sim: *options,
        // Ingest each burst whole, keep the trace's own submit stamps, and
        // retain the decision log for the outcome.
        max_batch: usize::MAX,
        restamp_submit: false,
        retain_history: true,
        expected_jobs: Some(jobs.len()),
        ..ServiceConfig::new(config)
    };
    let (mut core, handle) = ServiceCore::new(service_config, policy, start);
    core.set_telemetry(telemetry);

    // Submission order: by submit time, stable within ties — the exact
    // order the simulator's event queue delivers arrivals.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| jobs[i].submit);
    let mut next_submit = 0usize;

    let clock = ManualClock::starting_at(start);
    while core.kernel().completed_len() < jobs.len() {
        let due_submit = order.get(next_submit).map(|&i| jobs[i].submit);
        let due_event = core.kernel().next_event_time();
        let now = match (due_submit, due_event) {
            (Some(s), Some(e)) => s.min(e),
            (Some(s), None) => s,
            (None, Some(e)) => e,
            (None, None) => {
                return Err(SimError::Stuck {
                    time: clock.now(),
                    waiting: core.kernel().waiting_len(),
                })
            }
        };
        clock.set(now);
        while next_submit < order.len() && jobs[order[next_submit]].submit == now {
            let job = jobs[order[next_submit]].clone();
            let tenant = TenantId(job.user.0);
            handle
                .submit(tenant, job)
                .expect("replay core holds the receiver");
            next_submit += 1;
        }
        core.tick(now, observers)?;
    }
    Ok(core.into_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_schedulers::Fcfs;
    use rsched_simkit::SimDuration;

    fn job(id: u32, submit_s: u64, dur_s: u64, nodes: u32, mem: u64) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            mem,
        )
    }

    #[test]
    fn replay_matches_direct_simulation() {
        let config = ClusterConfig::new(8, 64);
        let jobs = vec![
            job(1, 0, 100, 2, 8),
            job(2, 0, 50, 4, 16),
            job(3, 30, 10, 8, 32),
            job(4, 120, 5, 1, 4),
        ];
        let options = SimOptions::default();
        let sim =
            rsched_sim::run_simulation(config, &jobs, &mut Fcfs::default(), &options).unwrap();
        let svc = replay(config, &jobs, Box::new(Fcfs::default()), &options, &mut []).unwrap();
        assert_eq!(sim.decisions, svc.decisions);
        assert_eq!(sim.stats, svc.stats);
        assert_eq!(sim.records, svc.records);
        assert_eq!(sim.end_time, svc.end_time);
        assert!((sim.node_seconds - svc.node_seconds).abs() < 1e-12);
        assert!((sim.memory_gb_seconds - svc.memory_gb_seconds).abs() < 1e-12);
    }

    #[test]
    fn replay_of_empty_workload_is_empty() {
        let config = ClusterConfig::new(4, 8);
        let out = replay(
            config,
            &[],
            Box::new(Fcfs::default()),
            &SimOptions::default(),
            &mut [],
        )
        .unwrap();
        assert!(out.records.is_empty());
        assert!(out.decisions.is_empty());
    }
}
