//! Service clocks: how the daemon's tick loop experiences time.
//!
//! The decision kernel is clock-agnostic — it is handed a [`SimTime`] per
//! tick and never asks where it came from. A [`ServiceClock`] supplies
//! those instants: [`WallClock`] maps them onto real time (sleeping between
//! ticks), while [`ManualClock`] is advanced explicitly by tests and the
//! deterministic replay driver, so the same submission stream always
//! produces the same tick sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rsched_simkit::{SimDuration, SimTime};

/// A source of tick instants for the service run loop.
///
/// `advance` is called between ticks with the configured tick interval and
/// a hint of the next scheduled kernel event (the time the service could
/// sleep until if no submission arrives). Implementations decide whether
/// that means really sleeping ([`WallClock`]) or jumping a counter
/// ([`ManualClock`]).
pub trait ServiceClock: Send {
    /// The current service time.
    fn now(&self) -> SimTime;

    /// Move time forward by (at least a bounded fraction of) `tick`.
    /// `idle_until` is the next kernel event time, if any — a deterministic
    /// clock with nothing to ingest may jump straight to it.
    fn advance(&mut self, tick: SimDuration, idle_until: Option<SimTime>);
}

/// Real time: service instants are milliseconds since the clock was
/// created, and advancing sleeps the daemon thread for the tick interval
/// (bounded decision latency — a submission never waits longer than one
/// tick plus the epoch itself).
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock anchored at "now" (service t = 0).
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl ServiceClock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_millis(self.epoch.elapsed().as_millis() as u64)
    }

    fn advance(&mut self, tick: SimDuration, _idle_until: Option<SimTime>) {
        // Live traffic can arrive at any instant, so the idle hint is
        // ignored: sleep one tick and look again.
        std::thread::sleep(std::time::Duration::from_millis(tick.as_millis()));
    }
}

/// A deterministic, manually-advanced clock backed by a shared atomic
/// millisecond counter.
///
/// Cloning yields another handle on the *same* clock, so a test can hold
/// one handle while the daemon thread ticks another. `advance` jumps by
/// the tick interval — or straight to `idle_until` when that is further
/// away, which is what lets a drain of long jobs finish in microseconds of
/// real time.
#[derive(Debug, Clone)]
pub struct ManualClock {
    millis: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at t = 0.
    pub fn new() -> Self {
        ManualClock::starting_at(SimTime::ZERO)
    }

    /// A manual clock starting at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        ManualClock {
            millis: Arc::new(AtomicU64::new(start.as_millis())),
        }
    }

    /// Set the clock to an absolute time. Never moves backwards: an
    /// earlier `to` leaves the clock unchanged.
    pub fn set(&self, to: SimTime) {
        self.millis.fetch_max(to.as_millis(), Ordering::SeqCst);
    }

    /// Advance the clock by `by`.
    pub fn advance_by(&self, by: SimDuration) {
        self.millis.fetch_add(by.as_millis(), Ordering::SeqCst);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl ServiceClock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_millis(self.millis.load(Ordering::SeqCst))
    }

    fn advance(&mut self, tick: SimDuration, idle_until: Option<SimTime>) {
        let stepped = self.now() + tick;
        let target = match idle_until {
            // Nothing can happen before the next kernel event: jump there.
            Some(event) if event > stepped => event,
            _ => stepped,
        };
        self.set(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_and_monotonic() {
        let clock = ManualClock::new();
        let other = clock.clone();
        clock.advance_by(SimDuration::from_millis(250));
        assert_eq!(other.now(), SimTime::from_millis(250));
        other.set(SimTime::from_millis(100)); // backwards: ignored
        assert_eq!(clock.now(), SimTime::from_millis(250));
    }

    #[test]
    fn manual_advance_jumps_to_idle_hint() {
        let mut clock = ManualClock::new();
        clock.advance(
            SimDuration::from_millis(10),
            Some(SimTime::from_secs(60)), // next completion far away
        );
        assert_eq!(clock.now(), SimTime::from_secs(60));
        // A nearer hint than one tick does not short-step the clock.
        clock.advance(SimDuration::from_millis(10), Some(SimTime::from_secs(60)));
        assert_eq!(clock.now(), SimTime::from_millis(60_010));
    }

    #[test]
    fn wall_clock_moves_forward() {
        let mut clock = WallClock::new();
        let before = clock.now();
        clock.advance(SimDuration::from_millis(5), None);
        assert!(clock.now() >= before + SimDuration::from_millis(4));
    }
}
