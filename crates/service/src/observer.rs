//! Streaming service telemetry, in the style of `rsched_sim::SimObserver`.
//!
//! A [`ServiceObserver`] rides along inside the service loop and sees every
//! tick, admission verdict, scheduling decision, and completion as it
//! happens — no post-hoc log scraping, no unbounded buffering.

use rsched_cluster::{JobRecord, JobSpec};
use rsched_sim::DecisionRecord;
use rsched_simkit::SimTime;

use crate::admission::AdmissionError;
use crate::core::ServiceReport;
use crate::tenant::TenantId;

/// Per-tick aggregates streamed to [`ServiceObserver::on_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickStats {
    /// Service time of this tick.
    pub now: SimTime,
    /// Submissions ingested from the channel this tick (admitted or not).
    pub submitted: usize,
    /// Submissions admitted to the waiting queue this tick.
    pub admitted: usize,
    /// Submissions rejected this tick.
    pub rejected: usize,
    /// Jobs that completed this tick.
    pub completions: usize,
    /// Policy decisions recorded this tick.
    pub decisions: usize,
    /// Waiting-queue depth after the tick.
    pub queue_depth: usize,
    /// Running jobs after the tick.
    pub running: usize,
    /// Wall-clock cost of the whole tick, in nanoseconds.
    pub wall_nanos: u64,
}

/// Observer of a live service run. All methods default to no-ops; implement
/// the ones you care about.
pub trait ServiceObserver {
    /// A tick finished.
    fn on_tick(&mut self, stats: &TickStats) {
        let _ = stats;
    }

    /// A submission was admitted to the waiting queue.
    fn on_admit(&mut self, tenant: TenantId, job: &JobSpec, now: SimTime) {
        let _ = (tenant, job, now);
    }

    /// A submission was rejected at the front door.
    fn on_reject(
        &mut self,
        tenant: TenantId,
        job: &JobSpec,
        reason: &AdmissionError,
        now: SimTime,
    ) {
        let _ = (tenant, job, reason, now);
    }

    /// The policy issued a decision (accepted or rejected by validation).
    fn on_decision(&mut self, record: &DecisionRecord) {
        let _ = record;
    }

    /// A job finished and released its resources.
    fn on_completion(&mut self, record: &JobRecord) {
        let _ = record;
    }

    /// The service drained and is shutting down.
    fn on_drain(&mut self, report: &ServiceReport) {
        let _ = report;
    }
}

/// Counts every callback; handy in tests and smoke checks.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingServiceObserver {
    /// Ticks observed.
    pub ticks: usize,
    /// Admissions observed.
    pub admits: usize,
    /// Rejections observed.
    pub rejects: usize,
    /// Decisions observed.
    pub decisions: usize,
    /// Completions observed.
    pub completions: usize,
    /// Drain notifications observed (0 or 1).
    pub drains: usize,
}

impl ServiceObserver for CountingServiceObserver {
    fn on_tick(&mut self, _stats: &TickStats) {
        self.ticks += 1;
    }
    fn on_admit(&mut self, _tenant: TenantId, _job: &JobSpec, _now: SimTime) {
        self.admits += 1;
    }
    fn on_reject(
        &mut self,
        _tenant: TenantId,
        _job: &JobSpec,
        _reason: &AdmissionError,
        _now: SimTime,
    ) {
        self.rejects += 1;
    }
    fn on_decision(&mut self, _record: &DecisionRecord) {
        self.decisions += 1;
    }
    fn on_completion(&mut self, _record: &JobRecord) {
        self.completions += 1;
    }
    fn on_drain(&mut self, _report: &ServiceReport) {
        self.drains += 1;
    }
}
