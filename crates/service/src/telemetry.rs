//! Decision-tick latency telemetry.
//!
//! The service's headline numbers — sustained submissions/sec and p50/p99
//! decision-tick latency — come from a bounded-memory [`LatencyRecorder`]
//! the core feeds once per tick with the tick's wall-clock cost.

/// How many samples the recorder retains. Older samples are overwritten
/// ring-buffer style, so a long-running daemon reports quantiles over its
/// recent window while `count`/`sum` keep lifetime totals.
const WINDOW: usize = 65_536;

/// A bounded ring of nanosecond latency samples with on-demand quantiles.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    next: usize,
    count: u64,
    sum_nanos: u64,
    max_nanos: u64,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            samples: Vec::new(),
            next: 0,
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Record one latency sample, in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        if self.samples.len() < WINDOW {
            self.samples.push(nanos);
        } else {
            self.samples[self.next] = nanos;
            self.next = (self.next + 1) % WINDOW;
        }
        self.count += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Lifetime number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (0.0–1.0) over the retained window, in
    /// nanoseconds; `None` when nothing has been recorded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// Aggregate the recorder into a [`LatencySummary`].
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_nanos: self.sum_nanos.checked_div(self.count).unwrap_or(0),
            p50_nanos: self.quantile(0.50).unwrap_or(0),
            p99_nanos: self.quantile(0.99).unwrap_or(0),
            max_nanos: self.max_nanos,
        }
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new()
    }
}

/// Point-in-time latency aggregates, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Lifetime sample count.
    pub count: u64,
    /// Mean over the lifetime.
    pub mean_nanos: u64,
    /// Median over the retained window.
    pub p50_nanos: u64,
    /// 99th percentile over the retained window.
    pub p99_nanos: u64,
    /// Lifetime maximum.
    pub max_nanos: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3}ms p50={:.3}ms p99={:.3}ms max={:.3}ms",
            self.count,
            self.mean_nanos as f64 / 1e6,
            self.p50_nanos as f64 / 1e6,
            self.p99_nanos as f64 / 1e6,
            self.max_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_over_known_distribution() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100u64 {
            r.record(v * 1000);
        }
        assert_eq!(r.count(), 100);
        let s = r.summary();
        // Nearest-rank on 100 samples: index round(99 * 0.5) = 50.
        assert_eq!(s.p50_nanos, 51_000);
        assert_eq!(s.p99_nanos, 99_000);
        assert_eq!(s.max_nanos, 100_000);
        assert_eq!(s.mean_nanos, 50_500);
    }

    #[test]
    fn empty_recorder_summarizes_to_zeroes() {
        let s = LatencyRecorder::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_nanos, 0);
    }

    #[test]
    fn window_overwrites_but_lifetime_counts_keep_growing() {
        let mut r = LatencyRecorder::new();
        for _ in 0..(WINDOW + 500) {
            r.record(7);
        }
        assert_eq!(r.count(), (WINDOW + 500) as u64);
        assert_eq!(r.samples.len(), WINDOW);
        assert_eq!(r.quantile(0.5), Some(7));
    }
}
