//! Decision-tick latency telemetry.
//!
//! The service's headline numbers — sustained submissions/sec and p50/p99
//! decision-tick latency — come from a bounded-memory [`LatencyRecorder`]
//! the core feeds once per tick with the tick's wall-clock cost.
//!
//! Since the observability refactor the recorder is a thin wrapper over
//! the workspace-shared [`LogHistogram`]:
//! the same HDR-style log-bucketed histogram the kernel's metrics registry
//! uses, with quantile error bounded at one sub-bucket (≤ 1.56%) and exact
//! `count`/`sum`/`min`/`max`/`mean`. Memory is O(1) in the sample count
//! (one fixed bucket table instead of the old 65 536-entry sample ring),
//! quantile queries no longer sort, and quantiles now cover the daemon's
//! whole lifetime rather than a recent window.

use rsched_telemetry::LogHistogram;

/// A log-bucketed nanosecond latency recorder with on-demand quantiles.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    hist: LogHistogram,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample, in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        self.hist.record(nanos);
    }

    /// Lifetime number of samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// The `q`-quantile (0.0–1.0) over all recorded samples, in
    /// nanoseconds; `None` when nothing has been recorded. The estimate's
    /// relative error is bounded by the histogram's sub-bucket width
    /// (≤ 1.56%); `q >= 1` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.hist.quantile(q)
    }

    /// The underlying shared histogram, e.g. to merge into a metrics
    /// registry snapshot or Prometheus export.
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Aggregate the recorder into a [`LatencySummary`].
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.hist.count(),
            mean_nanos: self.hist.mean().unwrap_or(0),
            p50_nanos: self.hist.quantile(0.50).unwrap_or(0),
            p99_nanos: self.hist.quantile(0.99).unwrap_or(0),
            max_nanos: self.hist.max().unwrap_or(0),
        }
    }
}

/// Point-in-time latency aggregates, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Lifetime sample count.
    pub count: u64,
    /// Mean over the lifetime (exact).
    pub mean_nanos: u64,
    /// Median estimate (≤ 1.56% relative error).
    pub p50_nanos: u64,
    /// 99th-percentile estimate (≤ 1.56% relative error).
    pub p99_nanos: u64,
    /// Lifetime maximum (exact).
    pub max_nanos: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3}ms p50={:.3}ms p99={:.3}ms max={:.3}ms",
            self.count,
            self.mean_nanos as f64 / 1e6,
            self.p50_nanos as f64 / 1e6,
            self.p99_nanos as f64 / 1e6,
            self.max_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_over_known_distribution() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100u64 {
            r.record(v * 1000);
        }
        assert_eq!(r.count(), 100);
        let s = r.summary();
        // count/sum/max/mean are exact; quantiles are log-bucketed with a
        // ≤ 2% relative error bound.
        assert_eq!(s.max_nanos, 100_000);
        assert_eq!(s.mean_nanos, 50_500);
        for (got, exact) in [(s.p50_nanos, 50_000u64), (s.p99_nanos, 99_000)] {
            let rel = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(rel <= 0.02, "got {got}, exact {exact}, rel {rel}");
        }
    }

    #[test]
    fn empty_recorder_summarizes_to_zeroes() {
        let s = LatencyRecorder::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_nanos, 0);
    }

    #[test]
    fn memory_stays_bounded_while_lifetime_counts_keep_growing() {
        let mut r = LatencyRecorder::new();
        for _ in 0..100_000u64 {
            r.record(7);
        }
        assert_eq!(r.count(), 100_000);
        // Identical samples stay exact no matter how many are recorded.
        assert_eq!(r.quantile(0.5), Some(7));
        assert_eq!(r.quantile(0.99), Some(7));
        assert_eq!(r.histogram().max(), Some(7));
    }

    #[test]
    fn shared_histogram_is_exposed_for_exporters() {
        let mut r = LatencyRecorder::new();
        r.record(1_000);
        r.record(3_000);
        assert_eq!(r.histogram().count(), 2);
        assert_eq!(r.histogram().sum(), 4_000);
    }
}
