//! # rsched-service
//!
//! The decision kernel as a long-running, multi-tenant scheduler service.
//!
//! Everything below the policy boundary is shared with the virtual-time
//! simulator: both drivers advance the *same* [`rsched_sim::KernelState`]
//! (waiting queue, running set, cluster ledger, utilization integrals,
//! decision log) through the same `deliver events → observe time → decide`
//! contract. The simulator drives it from a pre-known workload's event
//! queue; this crate drives it from a live MPSC submission channel on a
//! pluggable [`ServiceClock`]:
//!
//! * [`SubmitHandle`] — cloneable, lock-free front door for producers;
//! * [`AdmissionController`] — per-tenant token-bucket rate limits,
//!   queue-depth caps, and typed [`AdmissionError`] rejections;
//! * [`tenant::FairShare`] — usage-decayed tenant priority,
//!   folded into the kernel's ranked waiting queue;
//! * [`ServiceCore`] — the ingest → retire → decide tick loop;
//! * [`ServiceDaemon`] — the core on its own thread, with graceful drain;
//! * [`replay()`] — a trace pushed through the service driver at exact event
//!   times, bit-equivalent to `rsched_sim::run_simulation`;
//! * [`ServiceObserver`] / [`LatencySummary`] — streaming per-tick
//!   telemetry and decision-latency quantiles.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod admission;
pub mod clock;
pub mod core;
pub mod daemon;
pub mod ingest;
pub mod observer;
pub mod replay;
pub mod telemetry;
pub mod tenant;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionError};
pub use clock::{ManualClock, ServiceClock, WallClock};
pub use core::{ServiceConfig, ServiceCore, ServiceReport};
pub use daemon::ServiceDaemon;
pub use ingest::{ServiceRequest, ServiceStopped, Submission, SubmitHandle};
pub use observer::{CountingServiceObserver, ServiceObserver, TickStats};
pub use replay::{replay, replay_with_telemetry};
pub use telemetry::{LatencyRecorder, LatencySummary};
pub use tenant::{FairShare, FairShareConfig, RateLimit, TenantConfig, TenantId};
