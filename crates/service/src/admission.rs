//! Per-tenant admission control.
//!
//! Every submission passes through the [`AdmissionController`] before it
//! reaches the kernel's waiting queue: the tenant's queue-depth cap is
//! checked first (stateless), then its token bucket is debited, then its
//! fair-share usage is charged and the job's queue **rank** computed. A
//! rejection is typed ([`AdmissionError`]) so clients and telemetry can
//! distinguish "slow down" from "you asked for the impossible".

use std::collections::BTreeMap;

use rsched_cluster::{JobId, JobSpec};
use rsched_simkit::SimTime;

use crate::tenant::{FairShare, FairShareConfig, TenantConfig, TenantId, TokenBucket};

/// Why a submission was refused. Refusals never touch the kernel: the job
/// is bounced at the front door and the decision stream is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant's token bucket is empty: sustained submission rate
    /// exceeded. Retry after the bucket refills.
    RateLimited {
        /// The throttled tenant.
        tenant: TenantId,
    },
    /// The tenant already has `queued` jobs waiting against a cap of `cap`.
    QueueFull {
        /// The capped tenant.
        tenant: TenantId,
        /// The configured cap.
        cap: usize,
        /// Jobs currently waiting.
        queued: usize,
    },
    /// The job demands more than the whole machine; it could never run.
    Infeasible {
        /// Offending job.
        id: JobId,
        /// Nodes requested.
        nodes: u32,
        /// Memory requested (GB).
        memory_gb: u64,
    },
    /// A job with this id was already submitted (ids are global, like the
    /// simulator's workload validation).
    DuplicateId(JobId),
    /// The service is draining and accepts no new work.
    Draining,
}

impl AdmissionError {
    /// Stable snake_case code for metrics and exports
    /// (`service_rejected_{code}_total`).
    pub fn code(&self) -> &'static str {
        match self {
            AdmissionError::RateLimited { .. } => "rate_limited",
            AdmissionError::QueueFull { .. } => "queue_full",
            AdmissionError::Infeasible { .. } => "infeasible",
            AdmissionError::DuplicateId(_) => "duplicate",
            AdmissionError::Draining => "draining",
        }
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::RateLimited { tenant } => {
                write!(f, "{tenant} exceeded its submission rate limit")
            }
            AdmissionError::QueueFull {
                tenant,
                cap,
                queued,
            } => write!(f, "{tenant} has {queued} queued jobs (cap {cap})"),
            AdmissionError::Infeasible {
                id,
                nodes,
                memory_gb,
            } => write!(
                f,
                "job {id} requests {nodes} nodes / {memory_gb} GB, exceeding machine capacity"
            ),
            AdmissionError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
            AdmissionError::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Admission-control configuration: the default tenant profile plus the
/// fair-share decay.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionConfig {
    /// Limits applied to tenants without an explicit profile.
    pub default_tenant: TenantConfig,
    /// Usage-decay settings for the fair-share ranks.
    pub fair_share: FairShareConfig,
}

/// The front door: rate limits, queue caps, and fair-share ranking, all on
/// deterministic integer/quantized state.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    profiles: BTreeMap<TenantId, TenantConfig>,
    buckets: BTreeMap<TenantId, TokenBucket>,
    queued: BTreeMap<TenantId, usize>,
    fair_share: FairShare,
}

impl AdmissionController {
    /// A controller with no per-tenant profiles yet.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            profiles: BTreeMap::new(),
            buckets: BTreeMap::new(),
            queued: BTreeMap::new(),
            fair_share: FairShare::new(config.fair_share),
        }
    }

    /// Install (or replace) a tenant's profile. Replacing resets the
    /// tenant's token bucket to the new limit (full).
    pub fn set_tenant(&mut self, tenant: TenantId, profile: TenantConfig) {
        self.profiles.insert(tenant, profile);
        self.buckets.remove(&tenant);
    }

    /// The profile in force for a tenant.
    pub fn profile(&self, tenant: TenantId) -> TenantConfig {
        self.profiles
            .get(&tenant)
            .copied()
            .unwrap_or(self.config.default_tenant)
    }

    /// Jobs this tenant currently has waiting.
    pub fn queued(&self, tenant: TenantId) -> usize {
        self.queued.get(&tenant).copied().unwrap_or(0)
    }

    /// Admit one submission at `now`: enforce the queue cap and rate
    /// limit, charge fair share, and return the job's queue rank.
    ///
    /// Order matters: the cap is checked before the bucket so a refused
    /// submission never burns a token.
    pub fn admit(
        &mut self,
        tenant: TenantId,
        job: &JobSpec,
        now: SimTime,
    ) -> Result<u64, AdmissionError> {
        let profile = self.profile(tenant);
        if let Some(cap) = profile.max_queued {
            let queued = self.queued(tenant);
            if queued >= cap {
                return Err(AdmissionError::QueueFull {
                    tenant,
                    cap,
                    queued,
                });
            }
        }
        if let Some(limit) = profile.rate {
            let bucket = self
                .buckets
                .entry(tenant)
                .or_insert_with(|| TokenBucket::new(limit, now));
            if !bucket.try_take(now) {
                return Err(AdmissionError::RateLimited { tenant });
            }
        }
        // Rank first (decays usage to `now`), then charge this job.
        let rank = self.fair_share.rank(tenant, now);
        self.fair_share
            .charge(tenant, profile.weight, job.nodes, job.walltime);
        *self.queued.entry(tenant).or_insert(0) += 1;
        Ok(rank)
    }

    /// A previously admitted job left the waiting queue (it was placed on
    /// the cluster): release its slot under the tenant's queue cap.
    pub fn job_started(&mut self, tenant: TenantId) {
        if let Some(n) = self.queued.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::RateLimit;
    use rsched_simkit::SimDuration;

    fn job(id: u32) -> JobSpec {
        JobSpec::new(id, 0, SimTime::ZERO, SimDuration::from_secs(60), 2, 8)
    }

    #[test]
    fn default_tenant_is_unlimited() {
        let mut ac = AdmissionController::new(AdmissionConfig::default());
        for i in 0..1000 {
            assert_eq!(ac.admit(TenantId(1), &job(i), SimTime::ZERO), Ok(0));
        }
        assert_eq!(ac.queued(TenantId(1)), 1000);
    }

    #[test]
    fn queue_cap_rejects_then_recovers() {
        let mut ac = AdmissionController::new(AdmissionConfig::default());
        ac.set_tenant(
            TenantId(1),
            TenantConfig {
                max_queued: Some(2),
                ..TenantConfig::default()
            },
        );
        assert!(ac.admit(TenantId(1), &job(1), SimTime::ZERO).is_ok());
        assert!(ac.admit(TenantId(1), &job(2), SimTime::ZERO).is_ok());
        assert_eq!(
            ac.admit(TenantId(1), &job(3), SimTime::ZERO),
            Err(AdmissionError::QueueFull {
                tenant: TenantId(1),
                cap: 2,
                queued: 2
            })
        );
        // Another tenant is unaffected.
        assert!(ac.admit(TenantId(2), &job(4), SimTime::ZERO).is_ok());
        // A placement frees the slot.
        ac.job_started(TenantId(1));
        assert!(ac.admit(TenantId(1), &job(5), SimTime::ZERO).is_ok());
    }

    #[test]
    fn rate_limit_rejects_without_burning_queue_slots() {
        let mut ac = AdmissionController::new(AdmissionConfig::default());
        ac.set_tenant(
            TenantId(1),
            TenantConfig {
                rate: Some(RateLimit {
                    burst: 1,
                    per_sec: 1,
                }),
                ..TenantConfig::default()
            },
        );
        assert!(ac.admit(TenantId(1), &job(1), SimTime::ZERO).is_ok());
        assert_eq!(
            ac.admit(TenantId(1), &job(2), SimTime::ZERO),
            Err(AdmissionError::RateLimited {
                tenant: TenantId(1)
            })
        );
        assert_eq!(ac.queued(TenantId(1)), 1, "rejection did not count");
        assert!(ac
            .admit(TenantId(1), &job(3), SimTime::from_secs(1))
            .is_ok());
    }

    #[test]
    fn fair_share_ranks_flow_through_admission() {
        let mut ac = AdmissionController::new(AdmissionConfig {
            fair_share: FairShareConfig {
                enabled: true,
                half_life: SimDuration::from_secs(3600),
            },
            ..AdmissionConfig::default()
        });
        // Heavy tenant racks up usage; its later submissions rank worse
        // than a fresh tenant's.
        let heavy = TenantId(1);
        let mut last = 0;
        for i in 0..50 {
            let r = ac
                .admit(
                    heavy,
                    &JobSpec::new(i, 0, SimTime::ZERO, SimDuration::from_secs(600), 64, 8),
                    SimTime::ZERO,
                )
                .unwrap();
            assert!(r >= last, "rank only grows within a burst");
            last = r;
        }
        assert!(last > 0);
        assert_eq!(ac.admit(TenantId(2), &job(1000), SimTime::ZERO), Ok(0));
    }
}
