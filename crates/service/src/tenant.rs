//! Tenants, rate limits, and fair-share state.
//!
//! The service schedules for many tenants at once (the paper's multi-user
//! aggregates — `users_served`, per-user wait — become per-tenant service
//! guarantees here). Everything in this module is **integer-deterministic**:
//! token buckets count millitokens on the millisecond clock, and fair-share
//! ranks are quantized before they reach the queue ordering, so the same
//! submission stream always yields the same admissions and the same queue
//! order on every machine.

use std::collections::BTreeMap;

use rsched_simkit::{SimDuration, SimTime};

/// A tenant (account/project) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// A sustained-rate + burst submission limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity: how many submissions may land back-to-back.
    pub burst: u32,
    /// Sustained refill rate, whole submissions per second.
    pub per_sec: u32,
}

/// Per-tenant admission knobs. The default is fully permissive (no rate
/// limit, no queue cap, weight 1) so single-tenant replays behave exactly
/// like the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Token-bucket submission rate limit; `None` = unlimited.
    pub rate: Option<RateLimit>,
    /// Maximum jobs this tenant may have waiting at once; `None` = uncapped.
    pub max_queued: Option<usize>,
    /// Fair-share weight: usage is divided by this, so a weight-2 tenant
    /// ranks as if it had consumed half as much.
    pub weight: u32,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            rate: None,
            max_queued: None,
            weight: 1,
        }
    }
}

/// An integer token bucket on the service clock.
///
/// Tokens are tracked in **millitokens** (1 submission = 1000) so refill
/// needs no floating point: at `per_sec` tokens per second, the bucket
/// gains exactly `per_sec` millitokens per elapsed millisecond. The bucket
/// therefore never over-admits: across any window of `w` ms it accepts at
/// most `burst + ceil(w · per_sec / 1000)` submissions.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity_milli: u64,
    tokens_milli: u64,
    refill_per_sec: u64,
    last_refill: SimTime,
}

/// One submission, in millitokens.
const TOKEN: u64 = 1000;

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(limit: RateLimit, now: SimTime) -> Self {
        let capacity_milli = u64::from(limit.burst) * TOKEN;
        TokenBucket {
            capacity_milli,
            tokens_milli: capacity_milli,
            refill_per_sec: u64::from(limit.per_sec),
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed_ms = now.saturating_since(self.last_refill).as_millis();
        // per_sec tokens/s ≡ per_sec millitokens/ms: exact integer refill.
        let gained = elapsed_ms.saturating_mul(self.refill_per_sec);
        self.tokens_milli = (self.tokens_milli.saturating_add(gained)).min(self.capacity_milli);
        self.last_refill = self.last_refill.max(now);
    }

    /// Take one submission's worth of tokens if available.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens_milli >= TOKEN {
            self.tokens_milli -= TOKEN;
            true
        } else {
            false
        }
    }

    /// Whole submissions currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.tokens_milli / TOKEN
    }
}

/// Fair-share configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairShareConfig {
    /// When `false`, every job is admitted at rank 0 and the queue reduces
    /// to pure `(submit, id)` order — the simulator-equivalent mode.
    pub enabled: bool,
    /// Half-life of the usage decay: after this long without submitting, a
    /// tenant's remembered usage halves.
    pub half_life: SimDuration,
}

impl Default for FairShareConfig {
    fn default() -> Self {
        FairShareConfig {
            enabled: false,
            half_life: SimDuration::from_secs(3600),
        }
    }
}

/// Node-seconds of fair-share usage per rank step: tenants within the same
/// `RANK_QUANTUM` of decayed usage tie, and the tie falls back to the
/// queue's `(submit, id)` order. Coarse quantization keeps ranks stable
/// under floating-point decay.
const RANK_QUANTUM: f64 = 64.0;

#[derive(Debug, Clone, Copy, Default)]
struct TenantUsage {
    /// Decayed node-seconds charged to this tenant, per unit weight.
    usage: f64,
    last_decay: SimTime,
}

/// Usage-decayed tenant priority: the less a tenant has recently consumed
/// (per unit weight), the lower — i.e. better — its rank.
///
/// Usage is charged **at admission** (nodes × walltime, the reservation
/// the tenant asked for) rather than at completion, so a burst of heavy
/// submissions immediately deprioritizes later jobs from the same tenant —
/// the SFQ-style start-time fairness the ROADMAP's million-user story
/// needs, with O(log tenants) bookkeeping per submission.
#[derive(Debug)]
pub struct FairShare {
    config: FairShareConfig,
    tenants: BTreeMap<TenantId, TenantUsage>,
}

impl FairShare {
    /// A fair-share ledger with no recorded usage.
    pub fn new(config: FairShareConfig) -> Self {
        FairShare {
            config,
            tenants: BTreeMap::new(),
        }
    }

    /// Whether ranking is enabled at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    fn decayed(&mut self, tenant: TenantId, now: SimTime) -> &mut TenantUsage {
        let half_life = self.config.half_life;
        let entry = self.tenants.entry(tenant).or_default();
        let elapsed = now.saturating_since(entry.last_decay);
        if !elapsed.is_zero() && entry.usage > 0.0 {
            let halves = elapsed.as_secs_f64() / half_life.as_secs_f64().max(1e-9);
            entry.usage *= 0.5f64.powf(halves);
        }
        entry.last_decay = entry.last_decay.max(now);
        entry
    }

    /// Charge `nodes × walltime / weight` node-seconds of usage to the
    /// tenant at `now`.
    pub fn charge(&mut self, tenant: TenantId, weight: u32, nodes: u32, walltime: SimDuration) {
        let cost = f64::from(nodes) * walltime.as_secs_f64() / f64::from(weight.max(1));
        // The admission path ranks (and thus decays) before charging, so
        // adding directly here keeps it to one decay per admission.
        self.tenants.entry(tenant).or_default().usage += cost;
    }

    /// The tenant's current queue rank at `now` (0 is best). Disabled fair
    /// share always ranks 0.
    pub fn rank(&mut self, tenant: TenantId, now: SimTime) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        let usage = self.decayed(tenant, now).usage;
        let rank = (usage / RANK_QUANTUM).floor();
        if rank >= u64::MAX as f64 {
            u64::MAX
        } else {
            rank as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_burst_then_rate() {
        let mut b = TokenBucket::new(
            RateLimit {
                burst: 3,
                per_sec: 2,
            },
            SimTime::ZERO,
        );
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        // 500 ms later: 2/s × 0.5 s = 1 token accrued.
        let t1 = SimTime::from_millis(500);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
        // A long idle refills to capacity, not beyond.
        let t2 = SimTime::from_secs(100);
        assert_eq!(b.available(t2), 3);
    }

    #[test]
    fn bucket_refill_is_exact_integer_math() {
        let mut b = TokenBucket::new(
            RateLimit {
                burst: 1,
                per_sec: 1,
            },
            SimTime::ZERO,
        );
        assert!(b.try_take(SimTime::ZERO));
        // 999 ms: still 1 ms short of a whole token.
        assert!(!b.try_take(SimTime::from_millis(999)));
        assert!(b.try_take(SimTime::from_millis(1000)));
    }

    #[test]
    fn fair_share_ranks_heavy_users_worse() {
        let mut fs = FairShare::new(FairShareConfig {
            enabled: true,
            half_life: SimDuration::from_secs(3600),
        });
        let heavy = TenantId(1);
        let light = TenantId(2);
        let now = SimTime::ZERO;
        fs.charge(heavy, 1, 64, SimDuration::from_secs(600)); // 38400 node-s
        fs.charge(light, 1, 1, SimDuration::from_secs(60)); // 60 node-s
        assert!(fs.rank(heavy, now) > fs.rank(light, now));
        assert_eq!(fs.rank(TenantId(3), now), 0, "new tenant ranks best");
    }

    #[test]
    fn fair_share_decays_toward_zero() {
        let mut fs = FairShare::new(FairShareConfig {
            enabled: true,
            half_life: SimDuration::from_secs(60),
        });
        let t = TenantId(7);
        fs.charge(t, 1, 32, SimDuration::from_secs(1000)); // 32000 node-s
        let early = fs.rank(t, SimTime::ZERO);
        assert!(early > 0);
        // Ten half-lives: usage / 1024 → rank collapses.
        let late = fs.rank(t, SimTime::from_secs(600));
        assert!(late < early / 100, "rank {early} should decay, got {late}");
    }

    #[test]
    fn weight_divides_charged_usage() {
        let mut fs = FairShare::new(FairShareConfig {
            enabled: true,
            half_life: SimDuration::from_secs(3600),
        });
        fs.charge(TenantId(1), 1, 16, SimDuration::from_secs(1000));
        fs.charge(TenantId(2), 4, 16, SimDuration::from_secs(1000));
        let r1 = fs.rank(TenantId(1), SimTime::ZERO);
        let r2 = fs.rank(TenantId(2), SimTime::ZERO);
        assert!(r2 < r1, "weight-4 tenant charged a quarter of the usage");
    }

    #[test]
    fn disabled_fair_share_always_ranks_zero() {
        let mut fs = FairShare::new(FairShareConfig::default());
        fs.charge(TenantId(1), 1, 64, SimDuration::from_secs(10_000));
        assert_eq!(fs.rank(TenantId(1), SimTime::from_secs(5)), 0);
    }
}
