//! The service driver's correctness contract: the same job stream pushed
//! through the virtual-time simulator and through a `ManualClock`-ticked
//! [`rsched_service::replay`] produces **bit-identical** outcomes —
//! decision sequences, job records, aggregate stats, and utilization
//! integrals — for every builtin policy, across scenarios and seeds.
//!
//! This is the load-bearing test behind the daemon refactor: it proves the
//! ingest/admission/tick front-end is a pure re-driving of the shared
//! `KernelState`, not a second scheduler.

use rsched_cluster::ClusterConfig;
use rsched_cpsolver::SolverConfig;
use rsched_registry::{names, PolicyContext, PolicyRegistry};
use rsched_service::replay;
use rsched_service::{CountingServiceObserver, ServiceObserver};
use rsched_sim::{run_simulation, SimOptions, SimOutcome};
use rsched_workloads::{scenario_builtins, ArrivalMode, ScenarioContext};

/// Keep the OR-Tools planner quick: these grids run it dozens of times.
fn quick_solver() -> SolverConfig {
    SolverConfig {
        sa_iterations_per_task: 40,
        sa_iteration_cap: 800,
        exact_max_tasks: 6,
        ..SolverConfig::default()
    }
}

fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome, label: &str) {
    assert_eq!(a.policy_name, b.policy_name, "{label}: policy name");
    assert_eq!(a.decisions, b.decisions, "{label}: decision log");
    assert_eq!(a.records, b.records, "{label}: job records");
    assert_eq!(a.stats, b.stats, "{label}: stats");
    assert_eq!(a.end_time, b.end_time, "{label}: end time");
    assert!(
        (a.node_seconds - b.node_seconds).abs() < 1e-9,
        "{label}: node integral {} vs {}",
        a.node_seconds,
        b.node_seconds,
    );
    assert!(
        (a.memory_gb_seconds - b.memory_gb_seconds).abs() < 1e-9,
        "{label}: memory integral {} vs {}",
        a.memory_gb_seconds,
        b.memory_gb_seconds,
    );
}

/// All builtin policies × 2 scenarios × 2 seeds: virtual-time simulation
/// and service-driver replay agree bit for bit.
#[test]
fn service_replay_matches_virtual_time_simulation() {
    let scenarios = ["heterogeneous_mix", "adversarial"];
    let cluster = ClusterConfig::paper_default();
    let registry = PolicyRegistry::with_builtins();
    for scenario in scenarios {
        for seed in 1u64..=2 {
            let jobs = scenario_builtins()
                .generate(
                    scenario,
                    &ScenarioContext::new(12)
                        .with_mode(ArrivalMode::Dynamic)
                        .with_seed(seed),
                )
                .expect("builtin scenario")
                .jobs;
            let ctx = PolicyContext::new(&jobs, cluster)
                .with_seed(seed)
                .with_solver(quick_solver());
            for name in names::ALL_BUILTIN {
                let label = format!("{name} on {scenario}/seed {seed}");
                let options = SimOptions {
                    strict_backfill: name == names::EASY || name == names::EASY_SJBF,
                    ..SimOptions::default()
                };
                let mut sim_policy = registry.build(name, &ctx).expect("builtin");
                let svc_policy = registry.build(name, &ctx).expect("builtin");
                let sim = run_simulation(cluster, &jobs, sim_policy.as_mut(), &options)
                    .unwrap_or_else(|e| panic!("{label} (simulator): {e}"));
                let svc = replay(cluster, &jobs, svc_policy, &options, &mut [])
                    .unwrap_or_else(|e| panic!("{label} (service replay): {e}"));
                assert_outcomes_identical(&sim, &svc, &label);
            }
        }
    }
}

/// Replay streams every admission, decision, and completion to service
/// observers, and the counts reconcile with the outcome.
#[test]
fn replay_streams_observers_consistently() {
    let cluster = ClusterConfig::paper_default();
    let jobs = scenario_builtins()
        .generate(
            "heterogeneous_mix",
            &ScenarioContext::new(16)
                .with_mode(ArrivalMode::Dynamic)
                .with_seed(7),
        )
        .expect("builtin scenario")
        .jobs;
    let ctx = PolicyContext::new(&jobs, cluster).with_seed(7);
    let policy = PolicyRegistry::with_builtins()
        .build(names::FCFS, &ctx)
        .expect("builtin");
    let mut counter = CountingServiceObserver::default();
    let mut observers: Vec<&mut dyn ServiceObserver> = vec![&mut counter];
    let out = replay(
        cluster,
        &jobs,
        policy,
        &SimOptions::default(),
        &mut observers,
    )
    .expect("replay runs");
    assert_eq!(counter.admits, jobs.len(), "every job admitted");
    assert_eq!(counter.rejects, 0, "permissive admission rejects nothing");
    assert_eq!(
        counter.completions,
        out.records.len(),
        "completions streamed"
    );
    assert_eq!(counter.decisions, out.decisions.len(), "decisions streamed");
    assert!(counter.ticks > 0, "ticks observed");
}
