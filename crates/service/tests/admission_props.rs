//! Property tests over the admission subsystem: token buckets never
//! over-admit, queue caps are respected with typed refusals, and the
//! fair-share ranking is deterministic under a seeded tenant mix.

use proptest::prelude::*;

use rsched_cluster::{JobId, JobSpec};
use rsched_service::tenant::FairShare;
use rsched_service::{
    AdmissionConfig, AdmissionController, AdmissionError, FairShareConfig, RateLimit, TenantConfig,
    TenantId,
};
use rsched_simkit::{SimDuration, SimTime};

fn job(id: u32, nodes: u32) -> JobSpec {
    JobSpec::new(id, 0, SimTime::ZERO, SimDuration::from_secs(60), nodes, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Over any submission timeline, a token bucket admits at most
    /// `burst + refill` jobs per tenant: the bucket starts with `burst`
    /// tokens and gains exactly `per_sec` per elapsed second, so the
    /// admitted count can never exceed the integral of the rate.
    #[test]
    fn rate_limit_never_over_admits(
        burst in 1u32..8,
        per_sec in 1u32..5,
        gaps_ms in prop::collection::vec(0u64..2_000, 1..60)
    ) {
        let config = AdmissionConfig {
            default_tenant: TenantConfig {
                rate: Some(RateLimit { burst, per_sec }),
                max_queued: None,
                weight: 1,
            },
            ..AdmissionConfig::default()
        };
        let mut ctl = AdmissionController::new(config);
        let tenant = TenantId(1);

        let mut now_ms = 0u64;
        let mut admitted = 0u64;
        for (i, gap) in gaps_ms.iter().enumerate() {
            now_ms += gap;
            let now = SimTime::from_millis(now_ms);
            match ctl.admit(tenant, &job(i as u32, 1), now) {
                Ok(_) => admitted += 1,
                Err(AdmissionError::RateLimited { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected rejection: {other}"),
            }
            // Total supply so far: the initial burst plus exact integer
            // refill (per_sec tokens/s == per_sec millitokens/ms).
            let supply = u64::from(burst) + (now_ms * u64::from(per_sec)) / 1000;
            prop_assert!(
                admitted <= supply,
                "admitted {admitted} > supply {supply} at t={now_ms}ms"
            );
        }
    }

    /// A queue-depth cap is never exceeded, refusals carry the typed
    /// `QueueFull` reason, and `job_started` frees exactly one slot.
    #[test]
    fn queue_cap_is_respected(
        cap in 1usize..6,
        submissions in 1usize..40,
        start_every in 2usize..5
    ) {
        let config = AdmissionConfig {
            default_tenant: TenantConfig {
                rate: None,
                max_queued: Some(cap),
                weight: 1,
            },
            ..AdmissionConfig::default()
        };
        let mut ctl = AdmissionController::new(config);
        let tenant = TenantId(9);

        for i in 0..submissions {
            let verdict = ctl.admit(tenant, &job(i as u32, 1), SimTime::ZERO);
            match verdict {
                Ok(_) => prop_assert!(ctl.queued(tenant) <= cap),
                Err(AdmissionError::QueueFull { cap: c, queued, .. }) => {
                    prop_assert_eq!(c, cap);
                    prop_assert_eq!(queued, cap);
                }
                Err(other) => prop_assert!(false, "unexpected rejection: {other}"),
            }
            if i % start_every == start_every - 1 {
                let before = ctl.queued(tenant);
                ctl.job_started(tenant);
                prop_assert_eq!(ctl.queued(tenant), before.saturating_sub(1));
            }
            prop_assert!(ctl.queued(tenant) <= cap, "cap breached");
        }
    }

    /// A cap refusal never burns a rate token: submissions bounced by
    /// `QueueFull` leave the bucket untouched, so freeing a slot lets the
    /// very next submission through.
    #[test]
    fn cap_refusal_does_not_burn_tokens(extra in 1usize..10) {
        let config = AdmissionConfig {
            default_tenant: TenantConfig {
                rate: Some(RateLimit { burst: 2, per_sec: 1 }),
                max_queued: Some(1),
                weight: 1,
            },
            ..AdmissionConfig::default()
        };
        let mut ctl = AdmissionController::new(config);
        let tenant = TenantId(3);

        prop_assert!(ctl.admit(tenant, &job(0, 1), SimTime::ZERO).is_ok());
        for i in 0..extra {
            let verdict = ctl.admit(tenant, &job(1 + i as u32, 1), SimTime::ZERO);
            prop_assert!(matches!(verdict, Err(AdmissionError::QueueFull { .. })));
        }
        ctl.job_started(tenant);
        // One burst token must remain despite `extra` refused attempts.
        prop_assert!(ctl.admit(tenant, &job(100, 1), SimTime::ZERO).is_ok());
    }

    /// Fair-share ranking is a pure function of the charge history: two
    /// controllers fed the identical seeded tenant mix produce identical
    /// ranks for every admission.
    #[test]
    fn fair_share_ranks_are_deterministic(
        mix in prop::collection::vec((0u32..4, 1u32..32, 1u64..7_200), 1..50)
    ) {
        let config = AdmissionConfig {
            fair_share: FairShareConfig {
                enabled: true,
                ..FairShareConfig::default()
            },
            ..AdmissionConfig::default()
        };
        let mut a = AdmissionController::new(config);
        let mut b = AdmissionController::new(config);

        let mut now_ms = 0u64;
        for (i, (tenant, nodes, secs)) in mix.iter().enumerate() {
            now_ms += 30_000;
            let now = SimTime::from_millis(now_ms);
            let mut spec = job(i as u32, *nodes);
            spec.walltime = SimDuration::from_secs(*secs);
            let ra = a.admit(TenantId(*tenant), &spec, now);
            let rb = b.admit(TenantId(*tenant), &spec, now);
            match (ra, rb) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (x, y) => prop_assert!(false, "verdicts diverged at step {i}: {x:?} vs {y:?}"),
            }
        }
    }

    /// Heavier recent usage never ranks *better* (lower) than lighter
    /// usage at equal weight: fair-share ranks are monotone in charge.
    #[test]
    fn fair_share_rank_is_monotone_in_usage(
        light in 1u32..8,
        heavy_factor in 2u32..6
    ) {
        let mut fs = FairShare::new(FairShareConfig {
            enabled: true,
            ..FairShareConfig::default()
        });
        let now = SimTime::from_secs(10);
        fs.charge(TenantId(1), 1, light, SimDuration::from_secs(600));
        fs.charge(TenantId(2), 1, light * heavy_factor, SimDuration::from_secs(600));
        prop_assert!(fs.rank(TenantId(1), now) <= fs.rank(TenantId(2), now));
    }
}

/// Typed rejections surface every front-door failure mode distinctly.
#[test]
fn rejection_reasons_are_typed_and_displayed() {
    let reasons = [
        AdmissionError::RateLimited {
            tenant: TenantId(1),
        },
        AdmissionError::QueueFull {
            tenant: TenantId(2),
            cap: 4,
            queued: 4,
        },
        AdmissionError::Infeasible {
            id: JobId(7),
            nodes: 999,
            memory_gb: 1,
        },
        AdmissionError::DuplicateId(JobId(7)),
        AdmissionError::Draining,
    ];
    let rendered: Vec<String> = reasons.iter().map(|r| r.to_string()).collect();
    for (i, msg) in rendered.iter().enumerate() {
        assert!(!msg.is_empty(), "reason {i} renders");
        for (j, other) in rendered.iter().enumerate() {
            if i != j {
                assert_ne!(msg, other, "reasons {i} and {j} are distinguishable");
            }
        }
    }
}
