//! Rendering the system state into the paper's prompt (§3.4).
//!
//! The template follows the paper's published prompt: role preamble, system
//! capacity and availability, running/completed/waiting job sections, the
//! scratchpad, the multiobjective instructions, and the output-format
//! contract. The emitted grammar is exactly what
//! [`rsched_llm::prompt_parse`] reads — round-tripped in tests on both
//! sides.

use std::fmt::Write as _;

use rsched_sim::SystemView;

use crate::scratchpad::Scratchpad;

/// Renders prompts for the ReAct agent.
#[derive(Debug, Clone, Default)]
pub struct PromptBuilder;

impl PromptBuilder {
    /// Render the full prompt for one decision epoch. Reads entirely
    /// through the view's borrows — nothing is cloned.
    pub fn render(view: &SystemView<'_>, scratchpad: &Scratchpad) -> String {
        let mut p = String::with_capacity(4096);
        let _ = writeln!(
            p,
            "You are an expert HPC resource manager, and your task is to schedule jobs \
             in a high-performance computing (HPC) environment. Use the current system \
             state, job queue, scratchpad (decision history), and fairness indicators \
             to make well-balanced decisions.\n"
        );
        let _ = writeln!(
            p,
            "System capacity: {} nodes, {} GB memory",
            view.config.nodes, view.config.memory_gb
        );
        let _ = writeln!(p, "Current time: {}", view.now.as_secs());
        let _ = writeln!(p, "Available Nodes: {}", view.free_nodes);
        let _ = writeln!(p, "Available Memory: {} GB\n", view.free_memory_gb);

        let _ = writeln!(p, "Running Jobs:");
        if view.running.is_empty() {
            let _ = writeln!(p, "None");
        } else {
            for r in view.running {
                let _ = writeln!(
                    p,
                    "- Job {}: user_{}, {} nodes, {} GB, started t={}, expected end t={}",
                    r.id,
                    r.user.0,
                    r.nodes,
                    r.memory_gb,
                    r.start.as_secs(),
                    r.expected_end.as_secs()
                );
            }
        }
        // The O(1) aggregate — rendering never walks the completed slice.
        let _ = writeln!(
            p,
            "\nCompleted Jobs: {} of {} total jobs; {} not yet submitted\n",
            view.completed_stats.count, view.total_jobs, view.pending_arrivals
        );

        let _ = writeln!(p, "Waiting Jobs (eligible to schedule):");
        if view.waiting.is_empty() {
            let _ = writeln!(p, "None");
        } else {
            for j in view.waiting {
                let _ = writeln!(
                    p,
                    "- Job {}: user_{}, {} nodes, {} GB, walltime {} s, submitted t={}, waiting {} s",
                    j.id,
                    j.user.0,
                    j.nodes,
                    j.memory_gb,
                    j.walltime.as_secs(),
                    j.submit.as_secs(),
                    view.wait_so_far(j).as_secs()
                );
            }
        }

        let _ = writeln!(p, "\n# Scratchpad (Decision History)");
        let _ = writeln!(p, "{}", scratchpad.render());

        let _ = writeln!(
            p,
            "\nYour scheduling objectives are:\n\
             You must balance all of the following:\n\
             - Fairness: Minimize variance in user wait times. Avoid starving any user.\n\
             - Makespan: Minimize total time to finish all jobs.\n\
             - Utilization: Maximize Node & memory usage over time (avoid idle resources).\n\
             - Throughput: Maximize the number of jobs completed per unit time.\n\
             - Feasibility: Do not exceed {} Nodes or {} GB memory at any time.\n\n\
             Trade-offs are allowed. Do not over-optimize one metric at the expense of \
             others.\n\
             For example:\n\
             - Prioritizing a long-waiting job improves fairness, but may slightly hurt \
             makespan.\n\
             - Choosing short jobs improves throughput, but may increase wait time for \
             large jobs.\n\n\
             Decide:\n\
             (1) Which job should be started now (if any)?\n\
             (2) Justify your decision in thought.\n\
             (3) Return only one of:\n\
             - StartJob(job_id=X)\n\
             - BackfillJob(job_id=Y)\n\
             - Delay\n\
             - Stop (when all jobs have been scheduled)\n\n\
             Output format:\n\
             Thought: <your reasoning>\n\
             Action: <your action>",
            view.config.nodes, view.config.memory_gb
        );
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, CompletedStats, JobId, JobRecord, JobSpec, UserId};
    use rsched_llm::prompt_parse::parse_prompt;
    use rsched_sim::RunningSummary;
    use rsched_simkit::{SimDuration, SimTime};

    /// Owns the collections the borrowed view points into.
    struct Fixture {
        waiting: Vec<JobSpec>,
        running: Vec<RunningSummary>,
        completed: Vec<JobRecord>,
    }

    fn fixture() -> Fixture {
        Fixture {
            waiting: vec![
                JobSpec::new(32, 6, SimTime::ZERO, SimDuration::from_secs(147), 200, 8),
                JobSpec::new(
                    40,
                    1,
                    SimTime::from_secs(100),
                    SimDuration::from_secs(63),
                    4,
                    4,
                ),
            ],
            running: vec![RunningSummary {
                id: JobId(46),
                user: UserId(3),
                nodes: 18,
                memory_gb: 1472,
                start: SimTime::ZERO,
                submit: SimTime::ZERO,
                expected_end: SimTime::from_secs(10_000),
                class: None,
            }],
            completed: vec![JobRecord::new(
                JobSpec::new(7, 0, SimTime::ZERO, SimDuration::from_secs(10), 1, 1),
                SimTime::ZERO,
            )],
        }
    }

    impl Fixture {
        fn view(&self) -> SystemView<'_> {
            SystemView {
                now: SimTime::from_secs(1554),
                config: ClusterConfig::paper_default(),
                free_nodes: 238,
                free_memory_gb: 576,
                free_by_class: [0; rsched_cluster::MAX_CLASSES],
                waiting: &self.waiting,
                running: &self.running,
                completed: &self.completed,
                completed_stats: CompletedStats::from_records(&self.completed),
                pending_arrivals: 3,
                total_jobs: 80,
                calendar: None,
                telemetry: None,
            }
        }
    }

    #[test]
    fn prompt_contains_paper_sections() {
        let f = fixture();
        let text = PromptBuilder::render(&f.view(), &Scratchpad::default());
        for section in [
            "You are an expert HPC resource manager",
            "System capacity: 256 nodes, 2048 GB memory",
            "Current time: 1554",
            "Available Nodes: 238",
            "Available Memory: 576 GB",
            "Running Jobs:",
            "Waiting Jobs (eligible to schedule):",
            "# Scratchpad (Decision History)",
            "(nothing yet)",
            "Your scheduling objectives are:",
            "- Fairness: Minimize variance in user wait times",
            "- Feasibility: Do not exceed 256 Nodes or 2048 GB memory",
            "StartJob(job_id=X)",
            "Output format:",
            "Thought: <your reasoning>",
        ] {
            assert!(text.contains(section), "missing `{section}`");
        }
    }

    #[test]
    fn round_trips_through_the_llm_parser() {
        let mut pad = Scratchpad::default();
        pad.push_thought(0, "start the short job");
        pad.push_action(0, "StartJob(job_id=46)");
        pad.push_feedback(1554, "job 32 cannot be started — requires 256 Nodes");
        let f = fixture();
        let text = PromptBuilder::render(&f.view(), &pad);
        let parsed = parse_prompt(&text).expect("llm parser accepts builder output");
        assert_eq!(parsed.now_secs, 1554);
        assert_eq!(parsed.capacity_nodes, 256);
        assert_eq!(parsed.capacity_memory_gb, 2048);
        assert_eq!(parsed.available_nodes, 238);
        assert_eq!(parsed.available_memory_gb, 576);
        assert_eq!(parsed.running.len(), 1);
        assert_eq!(parsed.running[0].id, 46);
        assert_eq!(parsed.running[0].user, 3);
        assert_eq!(parsed.running[0].expected_end_secs, 10_000);
        assert_eq!(parsed.waiting.len(), 2);
        assert_eq!(parsed.waiting[0].id, 32);
        assert_eq!(parsed.waiting[0].user, 6);
        assert_eq!(parsed.waiting[0].walltime_secs, 147);
        assert_eq!(parsed.waiting[1].id, 40);
        assert_eq!(parsed.waiting[1].waiting_secs, 1454);
        assert_eq!(parsed.completed, 1);
        assert_eq!(parsed.total_jobs, 80);
        assert_eq!(parsed.pending_arrivals, 3);
        assert_eq!(parsed.feedback.len(), 1);
        assert_eq!(parsed.feedback[0].0, 1554);
    }

    #[test]
    fn empty_sections_render_none() {
        let mut f = fixture();
        f.waiting.clear();
        f.running.clear();
        let text = PromptBuilder::render(&f.view(), &Scratchpad::default());
        let parsed = parse_prompt(&text).expect("parses");
        assert!(parsed.running.is_empty());
        assert!(parsed.waiting.is_empty());
        assert_eq!(text.matches("None").count(), 2);
    }
}
