//! The persistent scratchpad memory (paper §2.2).
//!
//! *"The ReAct agent is prompted with … a running scratchpad that logs all
//! past thoughts, actions, and feedback. This scratchpad-based prompting
//! acts as a form of memory, enabling continuity across steps without
//! retraining or fine-tuning."*
//!
//! Entries are rendered as `[t=<secs>] <Kind>: <text>` lines. A token
//! budget (the paper ran O4-Mini with a 100 k-token context) truncates the
//! *oldest* entries first when the history outgrows the context window.

use rsched_llm::tokens::estimate_tokens;

/// What kind of entry a scratchpad line is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// The model's free-form reasoning.
    Thought,
    /// The action it emitted.
    Action,
    /// Environment feedback (constraint violations, parse failures).
    Feedback,
}

impl EntryKind {
    fn label(&self) -> &'static str {
        match self {
            EntryKind::Thought => "Thought",
            EntryKind::Action => "Action",
            EntryKind::Feedback => "Feedback",
        }
    }
}

/// One scratchpad entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Simulation time of the entry, whole seconds.
    pub time_secs: u64,
    /// Entry kind.
    pub kind: EntryKind,
    /// Single-line text (newlines are flattened on insert).
    pub text: String,
}

/// The decision-history memory.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    entries: Vec<Entry>,
    token_budget: u32,
}

impl Default for Scratchpad {
    fn default() -> Self {
        Scratchpad::new(80_000)
    }
}

impl Scratchpad {
    /// An empty scratchpad with the given rendering token budget.
    pub fn new(token_budget: u32) -> Self {
        Scratchpad {
            entries: Vec::new(),
            token_budget,
        }
    }

    /// Append a thought.
    pub fn push_thought(&mut self, time_secs: u64, text: &str) {
        self.push(time_secs, EntryKind::Thought, text);
    }

    /// Append an action.
    pub fn push_action(&mut self, time_secs: u64, text: &str) {
        self.push(time_secs, EntryKind::Action, text);
    }

    /// Append environment feedback.
    pub fn push_feedback(&mut self, time_secs: u64, text: &str) {
        self.push(time_secs, EntryKind::Feedback, text);
    }

    fn push(&mut self, time_secs: u64, kind: EntryKind, text: &str) {
        let flat = text.split_whitespace().collect::<Vec<_>>().join(" ");
        self.entries.push(Entry {
            time_secs,
            kind,
            text: flat,
        });
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Render for prompt inclusion: newest-first selection under the token
    /// budget, displayed oldest-first, with a truncation marker when
    /// history was dropped. Renders `(nothing yet)` when empty.
    pub fn render(&self) -> String {
        if self.entries.is_empty() {
            return "(nothing yet)".to_string();
        }
        let mut kept: Vec<&Entry> = Vec::new();
        let mut tokens = 0u32;
        for entry in self.entries.iter().rev() {
            let line_tokens = estimate_tokens(&entry.text) + 6;
            if tokens + line_tokens > self.token_budget && !kept.is_empty() {
                break;
            }
            if tokens + line_tokens > self.token_budget {
                break;
            }
            tokens += line_tokens;
            kept.push(entry);
        }
        let truncated = kept.len() < self.entries.len();
        let mut out = String::new();
        if truncated {
            out.push_str("(earlier history truncated)\n");
        }
        for entry in kept.iter().rev() {
            out.push_str(&format!(
                "[t={}] {}: {}\n",
                entry.time_secs,
                entry.kind.label(),
                entry.text
            ));
        }
        out.pop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_renders_placeholder() {
        let s = Scratchpad::default();
        assert_eq!(s.render(), "(nothing yet)");
        assert!(s.is_empty());
    }

    #[test]
    fn renders_in_order_with_kinds() {
        let mut s = Scratchpad::default();
        s.push_thought(0, "short job first");
        s.push_action(0, "StartJob(job_id=9)");
        s.push_feedback(10, "job 9 cannot be started");
        let text = s.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "[t=0] Thought: short job first");
        assert_eq!(lines[1], "[t=0] Action: StartJob(job_id=9)");
        assert_eq!(lines[2], "[t=10] Feedback: job 9 cannot be started");
    }

    #[test]
    fn newlines_are_flattened() {
        let mut s = Scratchpad::default();
        s.push_thought(0, "line one\nline two\t tab");
        assert_eq!(s.render(), "[t=0] Thought: line one line two tab");
    }

    #[test]
    fn token_budget_drops_oldest_first() {
        let mut s = Scratchpad::new(60);
        for i in 0..20 {
            s.push_thought(i, &format!("thought number {i} with some padding words"));
        }
        let text = s.render();
        assert!(text.starts_with("(earlier history truncated)"), "{text}");
        assert!(text.contains("thought number 19"), "newest kept: {text}");
        assert!(!text.contains("thought number 0"), "oldest dropped: {text}");
        assert_eq!(s.len(), 20, "entries themselves are not dropped");
    }

    #[test]
    fn within_budget_keeps_everything() {
        let mut s = Scratchpad::new(10_000);
        for i in 0..10 {
            s.push_action(i, "Delay");
        }
        let text = s.render();
        assert!(!text.contains("truncated"));
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn clear_resets() {
        let mut s = Scratchpad::default();
        s.push_thought(0, "x");
        s.clear();
        assert_eq!(s.render(), "(nothing yet)");
    }
}
