//! Parsing LLM completions into structured actions.
//!
//! The prompt instructs the model to answer
//!
//! ```text
//! Thought: <your reasoning>
//! Action: <your action>
//! ```
//!
//! with the action being one of `StartJob(job_id=X)`, `BackfillJob(job_id=Y)`,
//! `Delay`, or `Stop` (paper §3.4). Real models drift — extra whitespace,
//! case changes, trailing prose — so the parser is deliberately tolerant
//! while still rejecting anything outside the action space (hallucinated
//! actions must fail loudly, not silently become something else).

use rsched_cluster::JobId;
use rsched_sim::Action;

/// A parsed completion: the free-form reasoning plus the structured action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedCompletion {
    /// Everything after `Thought:` (may be empty if the model skipped it).
    pub thought: String,
    /// The validated action.
    pub action: Action,
}

/// Why a completion could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionParseError {
    /// No `Action:` line found.
    MissingAction,
    /// An `Action:` line was found but its content is not in the action
    /// space.
    UnknownAction(String),
    /// The action was recognized but its job id is malformed.
    BadJobId(String),
}

impl std::fmt::Display for ActionParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionParseError::MissingAction => f.write_str("completion has no `Action:` line"),
            ActionParseError::UnknownAction(a) => {
                write!(f, "`{a}` is not one of StartJob/BackfillJob/Delay/Stop")
            }
            ActionParseError::BadJobId(a) => write!(f, "cannot parse job id in `{a}`"),
        }
    }
}

impl std::error::Error for ActionParseError {}

/// Parse a completion. The *last* `Action:` line wins (models sometimes
/// restate the action after extra reasoning); the thought is everything
/// after the first `Thought:` up to that action line.
pub fn parse_completion(text: &str) -> Result<ParsedCompletion, ActionParseError> {
    let mut thought_lines: Vec<&str> = Vec::new();
    let mut in_thought = false;
    let mut action_line: Option<&str> = None;

    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = strip_prefix_ci(trimmed, "action:") {
            action_line = Some(rest.trim());
            in_thought = false;
        } else if let Some(rest) = strip_prefix_ci(trimmed, "thought:") {
            thought_lines.clear();
            thought_lines.push(rest.trim());
            in_thought = true;
        } else if in_thought {
            thought_lines.push(trimmed);
        }
    }

    let action_text = action_line.ok_or(ActionParseError::MissingAction)?;
    let action = parse_action(action_text)?;
    Ok(ParsedCompletion {
        thought: thought_lines.join("\n").trim().to_string(),
        action,
    })
}

/// Parse just the action syntax.
pub fn parse_action(text: &str) -> Result<Action, ActionParseError> {
    let t = text.trim().trim_end_matches('.');
    if t.eq_ignore_ascii_case("delay") {
        return Ok(Action::Delay);
    }
    if t.eq_ignore_ascii_case("stop") {
        return Ok(Action::Stop);
    }
    for (prefix, make) in [("startjob", true), ("backfilljob", false)] {
        if let Some(rest) = strip_prefix_ci(t, prefix) {
            let id =
                parse_job_id_args(rest).ok_or_else(|| ActionParseError::BadJobId(t.to_string()))?;
            return Ok(if make {
                Action::StartJob(JobId(id))
            } else {
                Action::BackfillJob(JobId(id))
            });
        }
    }
    Err(ActionParseError::UnknownAction(t.to_string()))
}

/// Accepts `(job_id=12)`, `( job_id = 12 )`, `(12)`, `(id=12)`.
fn parse_job_id_args(rest: &str) -> Option<u32> {
    let inner = rest.trim().strip_prefix('(')?.strip_suffix(')')?;
    let inner = inner.trim();
    let value = match inner.split_once('=') {
        Some((key, value)) => {
            let key = key.trim();
            if !key.eq_ignore_ascii_case("job_id") && !key.eq_ignore_ascii_case("id") {
                return None;
            }
            value
        }
        None => inner,
    };
    value.trim().parse().ok()
}

/// Case-insensitive prefix strip that is safe on multi-byte input: a
/// hallucinating model can emit arbitrary Unicode, and slicing at a byte
/// index inside a code point must not panic.
fn strip_prefix_ci<'a>(text: &'a str, prefix: &str) -> Option<&'a str> {
    let head = text.get(..prefix.len())?;
    if head.eq_ignore_ascii_case(prefix) {
        Some(&text[prefix.len()..])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_completion() {
        let p = parse_completion("Thought: start the short job\nAction: StartJob(job_id=9)")
            .expect("parses");
        assert_eq!(p.thought, "start the short job");
        assert_eq!(p.action, Action::StartJob(JobId(9)));
    }

    #[test]
    fn all_four_actions() {
        assert_eq!(
            parse_action("StartJob(job_id=2)"),
            Ok(Action::StartJob(JobId(2)))
        );
        assert_eq!(
            parse_action("BackfillJob(job_id=40)"),
            Ok(Action::BackfillJob(JobId(40)))
        );
        assert_eq!(parse_action("Delay"), Ok(Action::Delay));
        assert_eq!(parse_action("Stop"), Ok(Action::Stop));
    }

    #[test]
    fn tolerant_variants() {
        assert_eq!(
            parse_action("  startjob( job_id = 7 ) "),
            Ok(Action::StartJob(JobId(7)))
        );
        assert_eq!(parse_action("StartJob(7)"), Ok(Action::StartJob(JobId(7))));
        assert_eq!(parse_action("STOP."), Ok(Action::Stop));
        assert_eq!(parse_action("delay"), Ok(Action::Delay));
        assert_eq!(
            parse_action("BackfillJob(id=3)"),
            Ok(Action::BackfillJob(JobId(3)))
        );
    }

    #[test]
    fn multiline_thought_is_collected() {
        let text = "Thought: line one\nline two\nline three\nAction: Delay";
        let p = parse_completion(text).expect("parses");
        assert_eq!(p.thought, "line one\nline two\nline three");
        assert_eq!(p.action, Action::Delay);
    }

    #[test]
    fn last_action_line_wins() {
        let text = "Thought: maybe job 1\nAction: StartJob(job_id=1)\n\
                    Thought: actually job 2 is better\nAction: StartJob(job_id=2)";
        let p = parse_completion(text).expect("parses");
        assert_eq!(p.action, Action::StartJob(JobId(2)));
        assert!(p.thought.contains("job 2 is better"));
    }

    #[test]
    fn missing_action_is_error() {
        assert_eq!(
            parse_completion("Thought: hmm, let me think forever"),
            Err(ActionParseError::MissingAction)
        );
    }

    #[test]
    fn hallucinated_action_is_error() {
        let err = parse_action("PreemptJob(job_id=1)").unwrap_err();
        assert!(matches!(err, ActionParseError::UnknownAction(_)));
        let err = parse_action("RunEverything").unwrap_err();
        assert!(matches!(err, ActionParseError::UnknownAction(_)));
    }

    #[test]
    fn bad_job_id_is_error() {
        assert!(matches!(
            parse_action("StartJob(job_id=banana)"),
            Err(ActionParseError::BadJobId(_))
        ));
        assert!(matches!(
            parse_action("StartJob(wrong_key=4)"),
            Err(ActionParseError::BadJobId(_))
        ));
        assert!(matches!(
            parse_action("StartJob"),
            Err(ActionParseError::BadJobId(_))
        ));
    }

    #[test]
    fn thought_missing_is_tolerated() {
        let p = parse_completion("Action: Delay").expect("parses");
        assert_eq!(p.thought, "");
        assert_eq!(p.action, Action::Delay);
    }

    #[test]
    fn error_display() {
        assert!(ActionParseError::MissingAction
            .to_string()
            .contains("Action"));
        assert!(ActionParseError::UnknownAction("X".into())
            .to_string()
            .contains("X"));
    }
}
