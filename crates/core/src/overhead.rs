//! Computational-overhead accounting (paper §3.7).
//!
//! The paper measures, per workload/model pair: total elapsed scheduling
//! time, the number of LLM calls, and the distribution of per-call
//! latencies — restricted, for the latency analysis, to calls whose action
//! was *feasible and accepted* (`start_job`, `backfill_job`), because
//! delay-producing calls reflect system saturation rather than reasoning
//! difficulty (§3.7.1).

use rsched_sim::Action;
use rsched_simkit::stats::RunningStats;

/// One LLM invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Sampled (or measured) inference latency, seconds.
    pub latency_secs: f64,
    /// Prompt size, tokens.
    pub prompt_tokens: u32,
    /// Completion size, tokens.
    pub completion_tokens: u32,
    /// Waiting-queue length at the call.
    pub queue_len: usize,
    /// The action the call produced (`None` if the completion failed to
    /// parse).
    pub action: Option<Action>,
    /// Whether the simulator accepted it (`None` until observed).
    pub accepted: Option<bool>,
}

/// Accumulates [`CallRecord`]s over a run.
#[derive(Debug, Clone, Default)]
pub struct OverheadTracker {
    calls: Vec<CallRecord>,
}

impl OverheadTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a new call; returns its index.
    pub fn record_call(
        &mut self,
        latency_secs: f64,
        prompt_tokens: u32,
        completion_tokens: u32,
        queue_len: usize,
    ) -> usize {
        self.calls.push(CallRecord {
            latency_secs,
            prompt_tokens,
            completion_tokens,
            queue_len,
            action: None,
            accepted: None,
        });
        self.calls.len() - 1
    }

    /// Attach the parsed action to the most recent call.
    pub fn set_last_action(&mut self, action: Action) {
        if let Some(last) = self.calls.last_mut() {
            last.action = Some(action);
        }
    }

    /// Mark the most recent call accepted or rejected.
    pub fn set_last_verdict(&mut self, accepted: bool) {
        if let Some(last) = self.calls.last_mut() {
            last.accepted = Some(accepted);
        }
    }

    /// All calls.
    pub fn calls(&self) -> &[CallRecord] {
        &self.calls
    }

    /// Number of LLM calls (the middle panel of Figures 5–6).
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// Total elapsed scheduling time: the sum of every call's latency
    /// (the left panel of Figures 5–6).
    pub fn total_elapsed_secs(&self) -> f64 {
        self.calls.iter().map(|c| c.latency_secs).sum()
    }

    /// Latencies of accepted placement calls only (`start_job`,
    /// `backfill_job`) — the distribution of the right panel of
    /// Figures 5–6.
    pub fn placement_latencies(&self) -> Vec<f64> {
        self.calls
            .iter()
            .filter(|c| {
                c.accepted == Some(true) && c.action.map(|a| a.is_placement()).unwrap_or(false)
            })
            .map(|c| c.latency_secs)
            .collect()
    }

    /// Welford stats over the placement latencies.
    pub fn placement_latency_stats(&self) -> RunningStats {
        self.placement_latencies().into_iter().collect()
    }

    /// Total prompt + completion tokens across all calls.
    pub fn total_tokens(&self) -> u64 {
        self.calls
            .iter()
            .map(|c| c.prompt_tokens as u64 + c.completion_tokens as u64)
            .sum()
    }

    /// Drop all records.
    pub fn clear(&mut self) {
        self.calls.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::JobId;

    #[test]
    fn records_and_aggregates() {
        let mut t = OverheadTracker::new();
        t.record_call(5.0, 1000, 50, 3);
        t.set_last_action(Action::StartJob(JobId(1)));
        t.set_last_verdict(true);
        t.record_call(2.0, 1100, 40, 2);
        t.set_last_action(Action::Delay);
        t.set_last_verdict(true);
        t.record_call(8.0, 1200, 60, 2);
        t.set_last_action(Action::BackfillJob(JobId(2)));
        t.set_last_verdict(true);
        t.record_call(3.0, 1200, 60, 2);
        t.set_last_action(Action::StartJob(JobId(3)));
        t.set_last_verdict(false); // rejected

        assert_eq!(t.call_count(), 4);
        assert!((t.total_elapsed_secs() - 18.0).abs() < 1e-12);
        // Only the accepted start + backfill count.
        assert_eq!(t.placement_latencies(), vec![5.0, 8.0]);
        let stats = t.placement_latency_stats();
        assert_eq!(stats.count(), 2);
        assert!((stats.mean() - 6.5).abs() < 1e-12);
        assert_eq!(t.total_tokens(), 1000 + 50 + 1100 + 40 + (1200 + 60) * 2);
    }

    #[test]
    fn unparsed_calls_are_excluded_from_placements() {
        let mut t = OverheadTracker::new();
        t.record_call(4.0, 10, 1, 0);
        // No action attached (parse failure); verdict never arrives.
        assert_eq!(t.placement_latencies(), Vec::<f64>::new());
        assert_eq!(t.call_count(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut t = OverheadTracker::new();
        t.record_call(1.0, 1, 1, 0);
        t.clear();
        assert_eq!(t.call_count(), 0);
        assert_eq!(t.total_elapsed_secs(), 0.0);
    }
}
