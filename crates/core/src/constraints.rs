//! Natural-language feedback for constraint violations (paper §2.4).
//!
//! *"violations (e.g., memory overflow) are explained in natural language;
//! these explanations are appended to the scratchpad to inform future
//! decisions."* The simulator reports structured
//! [`RejectReason`]s; this module renders them in
//! the register of the paper's Figure 2 feedback trace.

use rsched_sim::{Action, RejectReason};

/// Render one rejection as scratchpad feedback.
///
/// Example output (matching the paper's trace):
/// `Action: StartJob failed (not enough resources) — Job 32 cannot be
/// started — requires 256 Nodes, 8 GB; available: 238 Nodes, 576 GB.`
pub fn render_feedback(action: &Action, reason: &RejectReason) -> String {
    let verb = match action {
        Action::StartJob(_) => "StartJob",
        Action::BackfillJob(_) => "BackfillJob",
        Action::Delay => "Delay",
        Action::Stop => "Stop",
    };
    let category = match reason {
        RejectReason::InsufficientResources { .. } => "not enough resources",
        RejectReason::NotInQueue(_) => "job not in queue",
        RejectReason::ExceedsCapacity(_) => "exceeds machine capacity",
        RejectReason::WouldDelayHead { .. } => "would delay the reserved head job",
        RejectReason::StopWithPendingJobs { .. } => "jobs still pending",
    };
    format!(
        "Action: {verb} failed ({category}) — {}.",
        capitalize(&reason.to_string())
    )
}

fn capitalize(text: &str) -> String {
    let mut chars = text.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::JobId;
    use rsched_simkit::SimTime;

    #[test]
    fn insufficient_resources_matches_paper_phrasing() {
        let reason = RejectReason::InsufficientResources {
            job: JobId(32),
            needed_nodes: 256,
            needed_memory_gb: 8,
            free_nodes: 238,
            free_memory_gb: 576,
        };
        let text = render_feedback(&Action::StartJob(JobId(32)), &reason);
        assert!(
            text.contains("StartJob failed (not enough resources)"),
            "{text}"
        );
        assert!(text.contains("Job 32 cannot be started"), "{text}");
        assert!(text.contains("available: 238 Nodes, 576 GB"), "{text}");
    }

    #[test]
    fn backfill_delay_violation() {
        let reason = RejectReason::WouldDelayHead {
            job: JobId(40),
            head: JobId(1),
            shadow: SimTime::from_secs(100),
        };
        let text = render_feedback(&Action::BackfillJob(JobId(40)), &reason);
        assert!(text.contains("BackfillJob failed"), "{text}");
        assert!(text.contains("head-of-queue job 1"), "{text}");
    }

    #[test]
    fn premature_stop() {
        let reason = RejectReason::StopWithPendingJobs {
            waiting: 2,
            pending_arrivals: 1,
        };
        let text = render_feedback(&Action::Stop, &reason);
        assert!(text.contains("Stop failed (jobs still pending)"), "{text}");
        assert!(text.contains("2 job(s) still waiting"), "{text}");
    }

    #[test]
    fn capitalization() {
        assert_eq!(capitalize("job 1 x"), "Job 1 x");
        assert_eq!(capitalize(""), "");
    }
}
