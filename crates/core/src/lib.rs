//! # rsched-core
//!
//! The paper's primary contribution: a **ReAct-style LLM scheduling agent**
//! for multiobjective HPC job scheduling (paper §2).
//!
//! The agent operates in a closed loop with the discrete-event simulator
//! (Figure 1): it renders the observable system state into a natural-
//! language prompt ([`prompt`]), queries a [`LanguageModel`]
//! (`rsched-llm`), parses the returned `Thought:`/`Action:` text
//! ([`action`]), and hands the action to the simulator, whose constraint-
//! enforcement module validates it. Rejections come back as natural-
//! language feedback ([`constraints`]) appended to the persistent
//! [`scratchpad`] — Algorithm 1's loop, with no retraining anywhere.
//!
//! * [`agent::ReActAgent`] — the loop body: prompt → LLM → parse → record.
//! * [`policy::LlmSchedulingPolicy`] — the agent as a
//!   [`SchedulingPolicy`](rsched_sim::SchedulingPolicy), so the simulator
//!   drives it exactly like FCFS/SJF/OR-Tools.
//! * [`overhead::OverheadTracker`] — per-call latency/token accounting for
//!   the computational-overhead analysis (paper §3.7).
//! * [`trace::DecisionTrace`] — the interpretable decision records behind
//!   the paper's Figure 2.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod action;
pub mod agent;
pub mod constraints;
pub mod overhead;
pub mod policy;
pub mod prompt;
pub mod scratchpad;
pub mod trace;

pub use agent::{AgentOptions, ReActAgent};
pub use overhead::{CallRecord, OverheadTracker};
pub use policy::LlmSchedulingPolicy;
pub use prompt::PromptBuilder;
pub use rsched_llm::backend::LanguageModel;
pub use scratchpad::Scratchpad;
pub use trace::DecisionTrace;
