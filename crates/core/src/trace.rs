//! Interpretable decision traces (paper Figure 2).
//!
//! Every agent decision is recorded with its thought, action, latency and
//! any environment feedback, and can be rendered in the layout of the
//! paper's Figure 2 panels:
//!
//! ```text
//! # Thought
//! <reasoning>
//!
//! # Action
//! StartJob(job_id=9)
//!
//! Decision at t=0
//! ```

use std::fmt::Write as _;

/// One decision's trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Simulation time, whole seconds.
    pub time_secs: u64,
    /// The model's reasoning text.
    pub thought: String,
    /// The emitted action, in canonical syntax.
    pub action: String,
    /// Sampled/measured call latency.
    pub latency_secs: f64,
    /// Environment feedback, if the action was rejected.
    pub feedback: Option<String>,
}

/// The ordered decision log of one run.
#[derive(Debug, Clone, Default)]
pub struct DecisionTrace {
    entries: Vec<TraceEntry>,
}

impl DecisionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a decision.
    pub fn push(&mut self, time_secs: u64, thought: &str, action: &str, latency_secs: f64) {
        self.entries.push(TraceEntry {
            time_secs,
            thought: thought.to_string(),
            action: action.to_string(),
            latency_secs,
            feedback: None,
        });
    }

    /// Attach feedback to the most recent decision (it was rejected).
    pub fn attach_feedback(&mut self, feedback: &str) {
        if let Some(last) = self.entries.last_mut() {
            last.feedback = Some(feedback.to_string());
        }
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no decisions were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Render one entry in the Figure 2 panel layout.
    pub fn render_entry(entry: &TraceEntry) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Thought");
        let _ = writeln!(out, "{}", entry.thought);
        let _ = writeln!(out, "\n# Action");
        let _ = writeln!(out, "{}", entry.action);
        if let Some(feedback) = &entry.feedback {
            let _ = writeln!(out, "\n# Feedback from Environment");
            let _ = writeln!(out, "[t={}] {}", entry.time_secs, feedback);
        }
        let _ = write!(out, "\nDecision at t={}", entry.time_secs);
        out
    }

    /// Render the whole trace, panels separated by rulers.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(Self::render_entry)
            .collect::<Vec<_>>()
            .join("\n\n────────────────────────────\n\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_figure2_layout() {
        let mut trace = DecisionTrace::new();
        trace.push(0, "job 9 completes quickly", "StartJob(job_id=9)", 4.2);
        let text = trace.render();
        assert!(text.contains("# Thought"));
        assert!(text.contains("job 9 completes quickly"));
        assert!(text.contains("# Action"));
        assert!(text.contains("StartJob(job_id=9)"));
        assert!(text.ends_with("Decision at t=0"));
        assert!(!text.contains("Feedback"), "no feedback pane when accepted");
    }

    #[test]
    fn feedback_pane_appears_for_rejections() {
        let mut trace = DecisionTrace::new();
        trace.push(1554, "try job 32", "StartJob(job_id=32)", 9.0);
        trace.attach_feedback("Job 32 cannot be started — requires 256 Nodes");
        let text = trace.render();
        assert!(text.contains("# Feedback from Environment"));
        assert!(text.contains("[t=1554] Job 32 cannot be started"));
    }

    #[test]
    fn multiple_entries_are_separated() {
        let mut trace = DecisionTrace::new();
        trace.push(0, "a", "Delay", 1.0);
        trace.push(5, "b", "Stop", 1.0);
        let text = trace.render();
        assert_eq!(text.matches("# Thought").count(), 2);
        assert!(text.contains("Decision at t=0"));
        assert!(text.contains("Decision at t=5"));
        assert_eq!(trace.len(), 2);
    }
}
