//! The agent as a [`SchedulingPolicy`] — pluggable into the simulator
//! exactly like the FCFS/SJF/OR-Tools baselines.

use rsched_llm::backend::LanguageModel;
use rsched_llm::SimulatedLlm;
use rsched_sim::{Action, ActionOutcome, OverheadReport, SchedulingPolicy, SystemView};

use crate::agent::{AgentOptions, ReActAgent};
use crate::overhead::OverheadTracker;
use crate::trace::DecisionTrace;

/// A [`SchedulingPolicy`] backed by the ReAct agent.
pub struct LlmSchedulingPolicy {
    agent: ReActAgent,
}

impl LlmSchedulingPolicy {
    /// Wrap any language model.
    pub fn new(llm: Box<dyn LanguageModel>) -> Self {
        LlmSchedulingPolicy {
            agent: ReActAgent::new(llm, AgentOptions::default()),
        }
    }

    /// Wrap a model with custom agent options.
    pub fn with_options(llm: Box<dyn LanguageModel>, options: AgentOptions) -> Self {
        LlmSchedulingPolicy {
            agent: ReActAgent::new(llm, options),
        }
    }

    /// The simulated Claude 3.7 scheduler (paper's first model).
    pub fn claude37(seed: u64) -> Self {
        LlmSchedulingPolicy::new(Box::new(SimulatedLlm::claude37(seed)))
    }

    /// The simulated O4-Mini scheduler (paper's second model).
    pub fn o4mini(seed: u64) -> Self {
        LlmSchedulingPolicy::new(Box::new(SimulatedLlm::o4mini(seed)))
    }

    /// The agent's overhead ledger (Figures 5–6 material).
    pub fn overhead(&self) -> &OverheadTracker {
        self.agent.overhead()
    }

    /// The agent's decision trace (Figure 2 material).
    pub fn trace(&self) -> &DecisionTrace {
        self.agent.trace()
    }

    /// The inner agent.
    pub fn agent(&self) -> &ReActAgent {
        &self.agent
    }
}

impl SchedulingPolicy for LlmSchedulingPolicy {
    fn name(&self) -> &str {
        self.agent.name()
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        self.agent.step(view)
    }

    fn observe(&mut self, outcome: &ActionOutcome) {
        self.agent.absorb(outcome);
    }

    fn reset(&mut self) {
        self.agent.reset();
    }

    fn overhead_report(&self) -> Option<OverheadReport> {
        let tracker = self.agent.overhead();
        Some(OverheadReport {
            total_elapsed_secs: tracker.total_elapsed_secs(),
            call_count: tracker.call_count(),
            placement_latencies: tracker.placement_latencies(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::ClusterConfig;
    use rsched_sim::{run_simulation, SimOptions};
    use rsched_workloads::{scenario_builtins, ArrivalMode, ScenarioContext, Workload};

    fn gen(scenario: &str, n: usize, mode: ArrivalMode, seed: u64) -> Workload {
        scenario_builtins()
            .generate(
                scenario,
                &ScenarioContext::new(n).with_mode(mode).with_seed(seed),
            )
            .expect("builtin scenario")
    }

    #[test]
    fn claude_schedules_a_small_static_workload_end_to_end() {
        let w = gen("homogeneous_short", 8, ArrivalMode::Static, 3);
        let mut policy = LlmSchedulingPolicy::claude37(3);
        let out = run_simulation(
            ClusterConfig::paper_default(),
            &w.jobs,
            &mut policy,
            &SimOptions::default(),
        )
        .expect("completes");
        assert_eq!(out.records.len(), 8);
        assert_eq!(out.stats.placements, 8);
        assert!(policy.overhead().call_count() >= 8);
        assert!(!policy.trace().is_empty());
        assert_eq!(policy.agent().malformed_completions, 0);
    }

    #[test]
    fn o4mini_schedules_dynamic_heterogeneous_workload() {
        let w = gen("heterogeneous_mix", 12, ArrivalMode::Dynamic, 5);
        let mut policy = LlmSchedulingPolicy::o4mini(5);
        let out = run_simulation(
            ClusterConfig::paper_default(),
            &w.jobs,
            &mut policy,
            &SimOptions::default(),
        )
        .expect("completes");
        assert_eq!(out.records.len(), 12);
        // Every record respects capacity (simulator invariants already
        // assert this; double-check end-state here).
        for r in &out.records {
            assert!(r.spec.nodes <= 256);
        }
    }

    #[test]
    fn adversarial_scenario_exercises_backfilling() {
        let w = gen("adversarial", 15, ArrivalMode::Dynamic, 7);
        let mut policy = LlmSchedulingPolicy::claude37(7);
        let out = run_simulation(
            ClusterConfig::paper_default(),
            &w.jobs,
            &mut policy,
            &SimOptions::default(),
        )
        .expect("completes");
        assert_eq!(out.records.len(), 15);
        // The blocker holds 128 of 256 nodes; the 1-node flood jobs fit
        // alongside, so the agent should start them without waiting for the
        // blocker to finish (no convoy).
        let blocker = out
            .records
            .iter()
            .find(|r| r.spec.nodes == 128)
            .expect("blocker exists");
        let small_waits: Vec<f64> = out
            .records
            .iter()
            .filter(|r| r.spec.nodes == 1)
            .map(|r| r.wait().as_secs_f64())
            .collect();
        let avg_small_wait = small_waits.iter().sum::<f64>() / small_waits.len() as f64;
        assert!(
            avg_small_wait < blocker.spec.duration.as_secs_f64() / 10.0,
            "small jobs should not convoy behind the blocker: avg wait {avg_small_wait}"
        );
    }

    #[test]
    fn reset_allows_reuse_across_runs() {
        let w = gen("resource_sparse", 5, ArrivalMode::Static, 1);
        let mut policy = LlmSchedulingPolicy::claude37(1);
        let a = run_simulation(
            ClusterConfig::paper_default(),
            &w.jobs,
            &mut policy,
            &SimOptions::default(),
        )
        .expect("first run");
        policy.reset();
        let calls_after_reset = policy.overhead().call_count();
        assert_eq!(calls_after_reset, 0);
        let b = run_simulation(
            ClusterConfig::paper_default(),
            &w.jobs,
            &mut policy,
            &SimOptions::default(),
        )
        .expect("second run");
        assert_eq!(a.records.len(), b.records.len());
    }
}
