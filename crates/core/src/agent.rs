//! The ReAct agent loop body (paper §2.3, Algorithm 1).
//!
//! Per decision epoch the agent: (1) constructs the prompt from the system
//! snapshot and the scratchpad, (2) queries the LLM, (3) parses the
//! `Thought`/`Action` completion, (4) appends thought and action to the
//! scratchpad, and (5) when the simulator rejects the action, appends the
//! natural-language feedback so the next query can correct course — no
//! retraining, only prompt context.

use rsched_llm::backend::LanguageModel;
use rsched_sim::{Action, ActionOutcome, SystemView};

use crate::action::parse_completion;
use crate::constraints::render_feedback;
use crate::overhead::OverheadTracker;
use crate::prompt::PromptBuilder;
use crate::scratchpad::Scratchpad;
use crate::trace::DecisionTrace;

/// Agent knobs.
#[derive(Debug, Clone, Copy)]
pub struct AgentOptions {
    /// Scratchpad rendering budget in tokens (the paper ran O4-Mini with a
    /// 100 k context; the default leaves headroom for the state sections).
    pub scratchpad_token_budget: u32,
    /// Whether to keep full decision traces (Figure 2 material).
    pub record_trace: bool,
}

impl Default for AgentOptions {
    fn default() -> Self {
        AgentOptions {
            scratchpad_token_budget: 80_000,
            record_trace: true,
        }
    }
}

/// The ReAct scheduling agent.
pub struct ReActAgent {
    name: String,
    llm: Box<dyn LanguageModel>,
    scratchpad: Scratchpad,
    overhead: OverheadTracker,
    trace: DecisionTrace,
    options: AgentOptions,
    /// Completions that failed to parse or errored (diagnostic).
    pub malformed_completions: u32,
}

impl ReActAgent {
    /// Wrap a language model.
    pub fn new(llm: Box<dyn LanguageModel>, options: AgentOptions) -> Self {
        ReActAgent {
            name: llm.model_name().to_string(),
            scratchpad: Scratchpad::new(options.scratchpad_token_budget),
            overhead: OverheadTracker::new(),
            trace: DecisionTrace::new(),
            options,
            llm,
            malformed_completions: 0,
        }
    }

    /// The underlying model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One Reason + Act step: returns the action to propose to the
    /// simulator. LLM failures and unparseable completions degrade to
    /// `Delay`, with the problem recorded as scratchpad feedback.
    pub fn step(&mut self, view: &SystemView<'_>) -> Action {
        let now = view.now.as_secs();
        let prompt = PromptBuilder::render(view, &self.scratchpad);
        let completion = match self.llm.complete(&prompt) {
            Ok(c) => c,
            Err(e) => {
                self.malformed_completions += 1;
                self.scratchpad
                    .push_feedback(now, &format!("LLM call failed ({e}); defaulting to Delay."));
                return Action::Delay;
            }
        };
        self.overhead.record_call(
            completion.latency_secs,
            completion.prompt_tokens,
            completion.completion_tokens,
            view.waiting.len(),
        );
        match parse_completion(&completion.text) {
            Ok(parsed) => {
                let action_text = parsed.action.to_string();
                self.scratchpad.push_thought(now, &parsed.thought);
                self.scratchpad.push_action(now, &action_text);
                if self.options.record_trace {
                    self.trace
                        .push(now, &parsed.thought, &action_text, completion.latency_secs);
                }
                self.overhead.set_last_action(parsed.action);
                parsed.action
            }
            Err(e) => {
                self.malformed_completions += 1;
                self.scratchpad.push_feedback(
                    now,
                    &format!("Output could not be parsed ({e}); defaulting to Delay."),
                );
                if self.options.record_trace {
                    self.trace.push(
                        now,
                        &completion.text,
                        "Delay (forced)",
                        completion.latency_secs,
                    );
                }
                self.overhead.set_last_action(Action::Delay);
                Action::Delay
            }
        }
    }

    /// Absorb the simulator's verdict on the last proposed action.
    pub fn absorb(&mut self, outcome: &ActionOutcome) {
        self.overhead.set_last_verdict(outcome.accepted());
        if let Some(reason) = &outcome.rejected {
            let feedback = render_feedback(&outcome.action, reason);
            self.scratchpad
                .push_feedback(outcome.time.as_secs(), &feedback);
            if self.options.record_trace {
                self.trace.attach_feedback(&feedback);
            }
        }
    }

    /// The overhead ledger.
    pub fn overhead(&self) -> &OverheadTracker {
        &self.overhead
    }

    /// The decision trace.
    pub fn trace(&self) -> &DecisionTrace {
        &self.trace
    }

    /// The scratchpad (for inspection).
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.scratchpad
    }

    /// Reset all per-run state (scratchpad, overhead, trace).
    pub fn reset(&mut self) {
        self.scratchpad.clear();
        self.overhead.clear();
        self.trace.clear();
        self.malformed_completions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobId, JobSpec};
    use rsched_llm::script::ScriptedBackend;
    use rsched_sim::RejectReason;
    use rsched_simkit::{SimDuration, SimTime};

    fn waiting_jobs() -> Vec<JobSpec> {
        vec![JobSpec::new(
            9,
            2,
            SimTime::ZERO,
            SimDuration::from_secs(2),
            256,
            2,
        )]
    }

    fn view_with_waiting(waiting: &[JobSpec]) -> SystemView<'_> {
        SystemView {
            now: SimTime::ZERO,
            config: ClusterConfig::paper_default(),
            free_nodes: 256,
            free_memory_gb: 2048,
            free_by_class: [0; rsched_cluster::MAX_CLASSES],
            waiting,
            running: &[],
            completed: &[],
            completed_stats: rsched_cluster::CompletedStats::default(),
            pending_arrivals: 0,
            total_jobs: 1,
            calendar: None,
            telemetry: None,
        }
    }

    #[test]
    fn step_parses_and_records() {
        let backend =
            ScriptedBackend::new(["Thought: job 9 is extremely short\nAction: StartJob(job_id=9)"])
                .with_latency(3.5);
        let mut agent = ReActAgent::new(Box::new(backend), AgentOptions::default());
        let action = agent.step(&view_with_waiting(&waiting_jobs()));
        assert_eq!(action, Action::StartJob(JobId(9)));
        assert_eq!(agent.overhead().call_count(), 1);
        assert_eq!(agent.trace().len(), 1);
        assert_eq!(agent.scratchpad().len(), 2, "thought + action recorded");
        let pad = agent.scratchpad().render();
        assert!(pad.contains("[t=0] Thought: job 9 is extremely short"));
        assert!(pad.contains("[t=0] Action: StartJob(job_id=9)"));
    }

    #[test]
    fn rejection_feedback_lands_in_scratchpad_and_trace() {
        let backend =
            ScriptedBackend::new(["Thought: try the big one\nAction: StartJob(job_id=9)"]);
        let mut agent = ReActAgent::new(Box::new(backend), AgentOptions::default());
        let action = agent.step(&view_with_waiting(&waiting_jobs()));
        agent.absorb(&ActionOutcome {
            time: SimTime::ZERO,
            action,
            rejected: Some(RejectReason::InsufficientResources {
                job: JobId(9),
                needed_nodes: 256,
                needed_memory_gb: 2,
                free_nodes: 100,
                free_memory_gb: 2048,
            }),
        });
        let pad = agent.scratchpad().render();
        assert!(pad.contains("Feedback: Action: StartJob failed"), "{pad}");
        let trace = agent.trace().render();
        assert!(trace.contains("# Feedback from Environment"), "{trace}");
        assert_eq!(agent.overhead().placement_latencies().len(), 0);
    }

    #[test]
    fn accepted_placement_counts_in_overhead() {
        let backend =
            ScriptedBackend::new(["Thought: go\nAction: StartJob(job_id=9)"]).with_latency(7.0);
        let mut agent = ReActAgent::new(Box::new(backend), AgentOptions::default());
        let action = agent.step(&view_with_waiting(&waiting_jobs()));
        agent.absorb(&ActionOutcome {
            time: SimTime::ZERO,
            action,
            rejected: None,
        });
        assert_eq!(agent.overhead().placement_latencies(), vec![7.0]);
    }

    #[test]
    fn unparseable_completion_degrades_to_delay() {
        let backend = ScriptedBackend::new(["I refuse to answer in the format"]);
        let mut agent = ReActAgent::new(Box::new(backend), AgentOptions::default());
        let action = agent.step(&view_with_waiting(&waiting_jobs()));
        assert_eq!(action, Action::Delay);
        assert_eq!(agent.malformed_completions, 1);
        assert!(agent
            .scratchpad()
            .render()
            .contains("Output could not be parsed"));
    }

    #[test]
    fn llm_error_degrades_to_delay() {
        let backend = ScriptedBackend::new(Vec::<String>::new()); // exhausted
        let mut agent = ReActAgent::new(Box::new(backend), AgentOptions::default());
        let action = agent.step(&view_with_waiting(&waiting_jobs()));
        assert_eq!(action, Action::Delay);
        assert!(agent.scratchpad().render().contains("LLM call failed"));
    }

    #[test]
    fn scratchpad_accumulates_across_steps() {
        let backend =
            ScriptedBackend::new(["Thought: one\nAction: Delay", "Thought: two\nAction: Delay"]);
        let mut agent = ReActAgent::new(Box::new(backend), AgentOptions::default());
        agent.step(&view_with_waiting(&waiting_jobs()));
        agent.step(&view_with_waiting(&waiting_jobs()));
        // The second prompt must contain the first step's history.
        // (ScriptedBackend records prompts; we can't reach it through the
        // box, so check the scratchpad instead.)
        assert_eq!(agent.scratchpad().len(), 4);
        assert!(agent.scratchpad().render().contains("Thought: one"));
        assert!(agent.scratchpad().render().contains("Thought: two"));
    }

    #[test]
    fn reset_clears_everything() {
        let backend = ScriptedBackend::new(["Thought: x\nAction: Delay"]);
        let mut agent = ReActAgent::new(Box::new(backend), AgentOptions::default());
        agent.step(&view_with_waiting(&waiting_jobs()));
        agent.reset();
        assert!(agent.scratchpad().is_empty());
        assert_eq!(agent.overhead().call_count(), 0);
        assert!(agent.trace().is_empty());
    }
}
