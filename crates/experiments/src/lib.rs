//! # rsched-experiments
//!
//! The figure-regeneration harness: one module (and one binary) per figure
//! of the paper's evaluation.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig3` | Normalized metrics, six scenarios @ 60 jobs (§3.5) |
//! | `fig4` | Scalability on Heterogeneous Mix, 10–100 jobs (§3.6) |
//! | `fig5` | Overhead by workload @ 60 jobs (§3.7.1) |
//! | `fig6` | Overhead scaling with queue size (§3.7.2) |
//! | `fig7` | Robustness box plots, 5 runs @ 100 jobs (§4) |
//! | `fig8` | Polaris trace replay, 100 jobs (§5) |
//!
//! Run e.g. `cargo run --release -p rsched-experiments --bin fig3`, or
//! `--bin all_figures` for the whole evaluation. Every run is
//! deterministic given `--seed`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod figures;
pub mod options;
pub mod output;
pub mod runner;

pub use options::ExperimentOptions;
pub use runner::{
    normalize_table, run_matrix, run_policy, scenario_jobs, OverheadSummary, RunResult,
    SchedulerKind,
};
