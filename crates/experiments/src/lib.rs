//! # rsched-experiments
//!
//! The figure-regeneration harness: one module (and one binary) per figure
//! of the paper's evaluation.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig3` | Normalized metrics, six scenarios @ 60 jobs (§3.5) |
//! | `fig4` | Scalability on Heterogeneous Mix, 10–100 jobs (§3.6) |
//! | `fig5` | Overhead by workload @ 60 jobs (§3.7.1) |
//! | `fig6` | Overhead scaling with queue size (§3.7.2) |
//! | `fig7` | Robustness box plots, 5 runs @ 100 jobs (§4) |
//! | `fig8` | Polaris trace replay, 100 jobs (§5) |
//!
//! Run e.g. `cargo run --release -p rsched-experiments --bin fig3`, or
//! `--bin all_figures` for the whole evaluation. Every run is
//! deterministic given `--seed`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod artifact;
pub mod compat;
pub mod figures;
pub mod options;
pub mod output;
pub mod runner;

#[allow(deprecated)]
pub use compat::{policy_seed, run_policy, scenario_jobs, SchedulerKind};
pub use options::ExperimentOptions;
pub use rsched_registry::{builtins, names, PolicyContext, PolicyRegistry, RegistryError};
pub use runner::{
    normalize_table, policy_seed_named, run_matrix, run_named, run_with_registry,
    scenario_jobs_named, MatrixCell, OverheadSummary, RunResult,
};
