//! Figure 6: LLM overhead scaling with queue size on Heterogeneous Mix
//! (paper §3.7.2): super-linear elapsed-time growth for O4-Mini (with a
//! transient spike near 80 jobs in the paper's run), near-linear growth
//! for Claude 3.7, and linear call-count scaling for both.

use std::fmt::Write as _;

use rsched_cluster::ClusterConfig;
use rsched_metrics::TextTable;
use rsched_parallel::ThreadPool;
use rsched_simkit::rng::SeedTree;
use rsched_workloads::names as scenario_names;

use crate::figures::{latency_columns, latency_row};
use crate::options::ExperimentOptions;
use crate::runner::{
    policy_seed_named, run_matrix, scenario_jobs_named, MatrixCell, OverheadSummary, RunResult,
};
use rsched_registry::names;

/// One (size, model) overhead measurement.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Queue size.
    pub jobs: usize,
    /// Model name.
    pub model: String,
    /// The run's overhead ledger.
    pub overhead: OverheadSummary,
}

/// Figure 6 results.
#[derive(Debug, Clone)]
pub struct Fig6Output {
    /// All `(size, model)` cells, size-major ascending.
    pub cells: Vec<ScalingCell>,
    /// The raw cells, for the JSON artifacts.
    pub runs: Vec<RunResult>,
}

/// Run the Figure 6 experiment.
pub fn run(opts: &ExperimentOptions, pool: &ThreadPool) -> Fig6Output {
    let sizes: Vec<usize> = if opts.quick {
        vec![10, 20, 40]
    } else {
        crate::figures::fig4::PAPER_SIZES.to_vec()
    };
    let tree = SeedTree::new(opts.seed).subtree("fig6", 0);
    let models = names::LLM_PAIR;

    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for &n in &sizes {
        let jobs = scenario_jobs_named(
            scenario_names::HETEROGENEOUS_MIX,
            n,
            tree.derive("workload", n as u64),
        )
        .expect("builtin scenario");
        for name in models {
            labels.push(n);
            cells.push(MatrixCell {
                scheduler: name.to_string(),
                scenario: format!("heterogeneous-mix/{n}"),
                jobs: jobs.clone(),
                cluster: ClusterConfig::paper_default(),
                policy_seed: policy_seed_named(tree.derive("policy", n as u64), name, 0),
                solver: opts.solver,
            });
        }
    }
    let results = run_matrix(cells, pool);
    let cells = labels
        .into_iter()
        .zip(&results)
        .map(|(jobs, result)| ScalingCell {
            jobs,
            model: result.scheduler.clone(),
            overhead: result.overhead.clone().expect("LLM runs track overhead"),
        })
        .collect();
    Fig6Output {
        cells,
        runs: results,
    }
}

impl Fig6Output {
    /// The cell for one (size, model) pair.
    pub fn cell(&self, jobs: usize, model: &str) -> Option<&ScalingCell> {
        self.cells
            .iter()
            .find(|c| c.jobs == jobs && c.model == model)
    }

    /// Render the scaling table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 6 — LLM overhead scaling with queue size (Heterogeneous Mix)\n"
        );
        let mut header = vec!["jobs".to_string(), "model".to_string()];
        header.extend(latency_columns().iter().map(|c| c.to_string()));
        let mut table = TextTable::new(header);
        for c in &self.cells {
            let mut row = vec![c.jobs.to_string(), c.model.clone()];
            row.extend(latency_row(
                c.overhead.call_count,
                c.overhead.total_elapsed_secs,
                &c.overhead.placement_latencies,
            ));
            table.push_row(row);
        }
        let _ = writeln!(out, "{}", table.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cpsolver::SolverConfig;

    #[test]
    fn elapsed_time_grows_with_queue_size_and_o4mini_dominates() {
        let pool = ThreadPool::new(4);
        let opts = ExperimentOptions {
            seed: 1,
            quick: true,
            solver: SolverConfig::default(),
        };
        let out = run(&opts, &pool);
        assert_eq!(out.cells.len(), 6, "3 sizes × 2 models");
        for &(lo, hi) in &[(10usize, 20usize), (20, 40)] {
            for model in ["Claude-3.7", "O4-Mini"] {
                let small = out.cell(lo, model).expect("present");
                let large = out.cell(hi, model).expect("present");
                assert!(
                    large.overhead.call_count > small.overhead.call_count,
                    "{model}: calls must grow {lo}→{hi}"
                );
            }
        }
        for &n in &[10usize, 20, 40] {
            let claude = out.cell(n, "Claude-3.7").expect("present");
            let o4 = out.cell(n, "O4-Mini").expect("present");
            assert!(o4.overhead.total_elapsed_secs > claude.overhead.total_elapsed_secs);
        }
        assert!(out.render().contains("jobs"));
    }
}
