//! Persona ablation: how the agent's objective-weight emphasis moves the
//! normalized metric profile (DESIGN.md §5).
//!
//! The two paper personas differ mainly in fairness-vs-throughput emphasis;
//! this sweep makes that axis explicit by running single-objective and
//! blended personas over the same Heterogeneous Mix workload. It answers
//! the interpretability question behind the paper's Figure 3 discussion:
//! *which* emphasis produces which profile.

use std::fmt::Write as _;

use rsched_cluster::ClusterConfig;
use rsched_core::LlmSchedulingPolicy;
use rsched_llm::persona::{ObjectiveWeights, Persona};
use rsched_llm::SimulatedLlm;
use rsched_metrics::{normalize_against, MetricsReport, NormalizedReport};
use rsched_parallel::ThreadPool;
use rsched_schedulers::Fcfs;
use rsched_sim::{SchedulingPolicy, Simulation};
use rsched_simkit::rng::SeedTree;
use rsched_workloads::names as scenario_names;

use crate::figures::normalized_table;
use crate::options::ExperimentOptions;
use crate::runner::{scenario_jobs_named, RunResult};

/// The swept weight profiles.
pub fn weight_profiles() -> Vec<(&'static str, ObjectiveWeights)> {
    vec![
        (
            "fairness-only",
            ObjectiveWeights {
                fairness: 1.0,
                throughput: 0.0,
                packing: 0.0,
                makespan: 0.0,
            },
        ),
        (
            "throughput-only",
            ObjectiveWeights {
                fairness: 0.0,
                throughput: 1.0,
                packing: 0.0,
                makespan: 0.0,
            },
        ),
        (
            "packing-only",
            ObjectiveWeights {
                fairness: 0.0,
                throughput: 0.0,
                packing: 1.0,
                makespan: 0.0,
            },
        ),
        (
            "makespan-only",
            ObjectiveWeights {
                fairness: 0.0,
                throughput: 0.0,
                packing: 0.0,
                makespan: 1.0,
            },
        ),
        ("balanced", ObjectiveWeights::balanced()),
        ("claude37-weights", Persona::claude37().weights),
        ("o4mini-weights", Persona::o4mini().weights),
    ]
}

/// Ablation results.
#[derive(Debug, Clone)]
pub struct AblationOutput {
    /// Jobs in the workload.
    pub jobs: usize,
    /// `(profile name, normalized report)` rows.
    pub rows: Vec<(String, NormalizedReport)>,
    /// The raw cells (FCFS baseline first), for the JSON artifacts.
    pub runs: Vec<RunResult>,
}

/// Run the ablation sweep.
pub fn run(opts: &ExperimentOptions, pool: &ThreadPool) -> AblationOutput {
    let n = opts.scaled(60);
    let tree = SeedTree::new(opts.seed).subtree("ablation", 0);
    let jobs = scenario_jobs_named(
        scenario_names::HETEROGENEOUS_MIX,
        n,
        tree.derive("workload", 0),
    )
    .expect("builtin scenario");
    let cluster = ClusterConfig::paper_default();
    let scenario_label = format!("heterogeneous-mix/{n}");

    let to_result = move |name: String,
                          scenario: &str,
                          outcome: rsched_sim::SimOutcome,
                          overhead: Option<crate::runner::OverheadSummary>| {
        RunResult {
            scheduler: name,
            scenario: scenario.to_string(),
            report: MetricsReport::compute(&outcome.records, cluster),
            stats: outcome.stats,
            overhead,
        }
    };

    let baseline_run = {
        let outcome = Simulation::new(cluster)
            .jobs(&jobs)
            .run(&mut Fcfs::default())
            .expect("FCFS completes");
        to_result("FCFS".to_string(), &scenario_label, outcome, None)
    };
    let baseline = baseline_run.report;

    let seed = tree.derive("policy", 0);
    let cells: Vec<(String, ObjectiveWeights)> = weight_profiles()
        .into_iter()
        .map(|(name, w)| (name.to_string(), w))
        .collect();
    let jobs_shared = jobs.clone();
    let label_shared = scenario_label.clone();
    let mut runs = vec![baseline_run];
    runs.extend(pool.par_map(cells, move |(name, weights)| {
        let persona = Persona {
            temperature: 0.0,
            ..Persona::custom(name.clone(), weights)
        };
        let mut policy = LlmSchedulingPolicy::new(Box::new(SimulatedLlm::new(persona, seed)));
        let outcome = Simulation::new(cluster)
            .jobs(&jobs_shared)
            .run(&mut policy)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let overhead = policy.overhead_report();
        to_result(name, &label_shared, outcome, overhead)
    }));

    let rows = runs
        .iter()
        .map(|r| (r.scheduler.clone(), normalize_against(&r.report, &baseline)))
        .collect();
    AblationOutput {
        jobs: n,
        rows,
        runs,
    }
}

impl AblationOutput {
    /// One profile's normalized report.
    pub fn row(&self, name: &str) -> Option<&NormalizedReport> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Render the sweep table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Persona ablation — objective-weight sweep, Heterogeneous Mix, {} jobs \
             (normalized vs FCFS)\n",
            self.jobs
        );
        let _ = writeln!(out, "{}", normalized_table(&self.rows).render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cpsolver::SolverConfig;
    use rsched_metrics::Metric;

    #[test]
    fn single_objective_personas_move_the_profile_as_expected() {
        let pool = ThreadPool::new(4);
        let opts = ExperimentOptions {
            seed: 8,
            quick: true,
            solver: SolverConfig::default(),
        };
        let out = run(&opts, &pool);
        assert_eq!(out.rows.len(), 1 + weight_profiles().len());

        let throughput_only = out.row("throughput-only").expect("present");
        let makespan_only = out.row("makespan-only").expect("present");
        // A throughput-obsessed persona must cut average wait at least as
        // hard as a makespan-obsessed one (which front-loads long jobs).
        let wait = |r: &NormalizedReport| r.get(Metric::AvgWait).unwrap_or(1.0);
        assert!(
            wait(throughput_only) <= wait(makespan_only) + 1e-9,
            "throughput-only {} vs makespan-only {}",
            wait(throughput_only),
            wait(makespan_only)
        );
        // The fairness-only persona should not trail throughput-only on
        // user fairness.
        let fairness_only = out.row("fairness-only").expect("present");
        let uf = |r: &NormalizedReport| r.get(Metric::UserFairness).unwrap_or(0.0);
        assert!(uf(fairness_only) + 1e-9 >= uf(throughput_only));
    }
}
