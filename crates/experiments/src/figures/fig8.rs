//! Figure 8: evaluation on real workload traces — 100 preprocessed Polaris
//! jobs on the 560-node × 512 GB/node configuration, all five schedulers,
//! normalized against FCFS (paper §5).
//!
//! The trace comes from the calibrated Polaris synthesizer + the paper's
//! preprocessing pipeline (`rsched-workloads::polaris`); a real exported
//! log in the same CSV schema can be substituted via `raw_from_csv`.

use std::fmt::Write as _;

use rsched_cluster::ClusterConfig;
use rsched_metrics::NormalizedReport;
use rsched_parallel::ThreadPool;
use rsched_simkit::rng::SeedTree;
use rsched_workloads::polaris::polaris_workload;

use crate::figures::normalized_table;
use crate::options::ExperimentOptions;
use crate::runner::{normalize_table, policy_seed_named, run_matrix, MatrixCell, RunResult};
use rsched_registry::names;

/// Figure 8 results.
#[derive(Debug, Clone)]
pub struct Fig8Output {
    /// Jobs replayed (100 in the paper).
    pub jobs: usize,
    /// `(scheduler, normalized)` rows.
    pub rows: Vec<(String, NormalizedReport)>,
    /// The raw cells, for the JSON artifacts.
    pub runs: Vec<RunResult>,
}

/// Run the Figure 8 experiment.
pub fn run(opts: &ExperimentOptions, pool: &ThreadPool) -> Fig8Output {
    let n = opts.scaled(100);
    let tree = SeedTree::new(opts.seed).subtree("fig8", 0);
    let jobs = polaris_workload(n, tree.derive("trace", 0));
    let cluster = ClusterConfig::polaris();

    let cells: Vec<MatrixCell> = names::PAPER_SET
        .into_iter()
        .map(|name| MatrixCell {
            scheduler: name.to_string(),
            scenario: format!("polaris/{}", jobs.len()),
            jobs: jobs.clone(),
            cluster,
            policy_seed: policy_seed_named(tree.derive("policy", 0), name, 0),
            solver: opts.solver,
        })
        .collect();
    let results = run_matrix(cells, pool);
    Fig8Output {
        jobs: jobs.len(),
        rows: normalize_table(&results, "FCFS"),
        runs: results,
    }
}

impl Fig8Output {
    /// Render the normalized table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 8 — Polaris trace replay, {} jobs, 560 nodes × 512 GB \
             (normalized vs FCFS)\n",
            self.jobs
        );
        let _ = writeln!(out, "{}", normalized_table(&self.rows).render());
        out
    }

    /// One scheduler's row.
    pub fn row(&self, scheduler: &str) -> Option<&NormalizedReport> {
        self.rows
            .iter()
            .find(|(name, _)| name == scheduler)
            .map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cpsolver::SolverConfig;
    use rsched_metrics::Metric;

    #[test]
    fn polaris_replay_produces_five_rows() {
        let pool = ThreadPool::new(4);
        let opts = ExperimentOptions {
            seed: 4,
            quick: true,
            solver: SolverConfig {
                sa_iterations_per_task: 30,
                sa_iteration_cap: 600,
                exact_max_tasks: 5,
                ..SolverConfig::default()
            },
        };
        let out = run(&opts, &pool);
        assert_eq!(out.rows.len(), 5);
        let fcfs = out.row("FCFS").expect("present");
        for (_, v) in fcfs.defined() {
            assert!((v - 1.0).abs() < 1e-9);
        }
        // System efficiency is preserved by the LLM schedulers (paper §5):
        // utilization and throughput stay in the same ballpark as FCFS.
        for model in ["Claude-3.7", "O4-Mini"] {
            let row = out.row(model).expect("present");
            if let Some(util) = row.get(Metric::NodeUtilization) {
                assert!(util > 0.5, "{model} node util ratio {util}");
            }
        }
        assert!(out.render().contains("Polaris"));
    }
}
