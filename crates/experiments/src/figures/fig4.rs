//! Figure 4: scalability analysis — normalized metrics on the
//! Heterogeneous Mix workload for queue sizes 10 → 100 (paper §3.6).

use std::fmt::Write as _;

use rsched_cluster::ClusterConfig;
use rsched_metrics::NormalizedReport;
use rsched_parallel::ThreadPool;
use rsched_simkit::rng::SeedTree;
use rsched_workloads::names as scenario_names;

use crate::figures::normalized_table;
use crate::options::ExperimentOptions;
use crate::runner::{
    normalize_table, policy_seed_named, run_matrix, scenario_jobs_named, MatrixCell, RunResult,
};
use rsched_registry::names;

/// The paper's queue sizes.
pub const PAPER_SIZES: [usize; 6] = [10, 20, 40, 60, 80, 100];

/// Figure 4 results: per-size normalized tables.
#[derive(Debug, Clone)]
pub struct Fig4Output {
    /// `(queue size, rows)` ascending.
    pub sizes: Vec<(usize, Vec<(String, NormalizedReport)>)>,
    /// The raw (pre-normalization) cells, for the JSON artifacts.
    pub runs: Vec<RunResult>,
}

/// Run the Figure 4 experiment.
pub fn run(opts: &ExperimentOptions, pool: &ThreadPool) -> Fig4Output {
    let sizes: Vec<usize> = if opts.quick {
        vec![10, 20, 40]
    } else {
        PAPER_SIZES.to_vec()
    };
    let tree = SeedTree::new(opts.seed).subtree("fig4", 0);
    let schedulers = names::PAPER_SET;

    let mut cells = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let jobs = scenario_jobs_named(
            scenario_names::HETEROGENEOUS_MIX,
            n,
            tree.derive("workload", n as u64),
        )
        .expect("builtin scenario");
        for name in schedulers {
            cells.push(MatrixCell {
                scheduler: name.to_string(),
                scenario: format!("heterogeneous-mix/{n}"),
                jobs: jobs.clone(),
                cluster: ClusterConfig::paper_default(),
                policy_seed: policy_seed_named(tree.derive("policy", i as u64), name, 0),
                solver: opts.solver,
            });
        }
    }
    let results = run_matrix(cells, pool);
    let sizes = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let slice = &results[i * schedulers.len()..(i + 1) * schedulers.len()];
            (n, normalize_table(slice, "FCFS"))
        })
        .collect();
    Fig4Output {
        sizes,
        runs: results,
    }
}

impl Fig4Output {
    /// Render all per-size tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 4 — scalability on Heterogeneous Mix (normalized vs FCFS)\n"
        );
        for (n, rows) in &self.sizes {
            let _ = writeln!(out, "## {n} jobs");
            let _ = writeln!(out, "{}", normalized_table(rows).render());
        }
        out
    }

    /// Rows for one size.
    pub fn size_rows(&self, n: usize) -> Option<&[(String, NormalizedReport)]> {
        self.sizes
            .iter()
            .find(|(s, _)| *s == n)
            .map(|(_, rows)| rows.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cpsolver::SolverConfig;

    #[test]
    fn quick_mode_covers_three_sizes() {
        let pool = ThreadPool::new(4);
        let opts = ExperimentOptions {
            seed: 3,
            quick: true,
            solver: SolverConfig {
                sa_iterations_per_task: 30,
                sa_iteration_cap: 600,
                exact_max_tasks: 5,
                ..SolverConfig::default()
            },
        };
        let out = run(&opts, &pool);
        assert_eq!(out.sizes.len(), 3);
        assert!(out.size_rows(10).is_some());
        for (n, rows) in &out.sizes {
            assert_eq!(rows.len(), 5, "size {n}");
        }
        assert!(out.render().contains("10 jobs"));
    }
}
