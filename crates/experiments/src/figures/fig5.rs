//! Figure 5: computational-overhead comparison across the six Figure 3
//! scenarios at 60 jobs (paper §3.7.1): total elapsed time, LLM call
//! counts, and per-call latency distributions for both models, counting
//! only accepted placement actions in the distribution.

use std::fmt::Write as _;

use rsched_cluster::ClusterConfig;
use rsched_metrics::TextTable;
use rsched_parallel::ThreadPool;
use rsched_simkit::rng::SeedTree;
use rsched_workloads::{names as scenario_names, scenario_builtins};

use crate::figures::{latency_columns, latency_row};
use crate::options::ExperimentOptions;
use crate::runner::{
    policy_seed_named, run_matrix, scenario_jobs_named, MatrixCell, OverheadSummary, RunResult,
};
use rsched_registry::names;

/// One (scenario, model) overhead measurement.
#[derive(Debug, Clone)]
pub struct OverheadCell {
    /// Registry name of the scenario measured.
    pub scenario: String,
    /// Model name.
    pub model: String,
    /// The run's overhead ledger.
    pub overhead: OverheadSummary,
}

/// Figure 5 results.
#[derive(Debug, Clone)]
pub struct Fig5Output {
    /// Jobs per scenario (60 in the paper).
    pub jobs_per_scenario: usize,
    /// All `(scenario, model)` cells, scenario-major.
    pub cells: Vec<OverheadCell>,
    /// The raw cells, for the JSON artifacts.
    pub runs: Vec<RunResult>,
}

/// Run the Figure 5 experiment.
pub fn run(opts: &ExperimentOptions, pool: &ThreadPool) -> Fig5Output {
    let n = opts.scaled(60);
    let tree = SeedTree::new(opts.seed).subtree("fig5", 0);
    let models = names::LLM_PAIR;

    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s_idx, scenario) in scenario_names::FIGURE3.into_iter().enumerate() {
        let jobs = scenario_jobs_named(scenario, n, tree.derive(scenario, 0))
            .expect("figure-3 scenarios are builtin");
        for name in models {
            labels.push(scenario);
            cells.push(MatrixCell {
                scheduler: name.to_string(),
                scenario: format!("{scenario}/{n}"),
                jobs: jobs.clone(),
                cluster: ClusterConfig::paper_default(),
                policy_seed: policy_seed_named(tree.derive("policy", s_idx as u64), name, 0),
                solver: opts.solver,
            });
        }
    }
    let results = run_matrix(cells, pool);
    let cells = labels
        .into_iter()
        .zip(&results)
        .map(|(scenario, result)| OverheadCell {
            scenario: scenario.to_string(),
            model: result.scheduler.clone(),
            overhead: result.overhead.clone().expect("LLM runs track overhead"),
        })
        .collect();
    Fig5Output {
        jobs_per_scenario: n,
        cells,
        runs: results,
    }
}

impl Fig5Output {
    /// The cell for one (scenario name, model) pair.
    pub fn cell(&self, scenario: &str, model: &str) -> Option<&OverheadCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.model == model)
    }

    /// Render the three panels (elapsed, calls, latency distribution).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 5 — LLM overhead per scenario, {} jobs (accepted placements only)\n",
            self.jobs_per_scenario
        );
        let mut header = vec!["scenario".to_string(), "model".to_string()];
        header.extend(latency_columns().iter().map(|c| c.to_string()));
        let mut table = TextTable::new(header);
        for c in &self.cells {
            let title = scenario_builtins()
                .title(&c.scenario)
                .unwrap_or(&c.scenario);
            let mut row = vec![title.to_string(), c.model.clone()];
            row.extend(latency_row(
                c.overhead.call_count,
                c.overhead.total_elapsed_secs,
                &c.overhead.placement_latencies,
            ));
            table.push_row(row);
        }
        let _ = writeln!(out, "{}", table.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cpsolver::SolverConfig;

    #[test]
    fn overhead_shapes_match_paper() {
        let pool = ThreadPool::new(4);
        let opts = ExperimentOptions {
            seed: 5,
            quick: true,
            solver: SolverConfig::default(),
        };
        let out = run(&opts, &pool);
        assert_eq!(out.cells.len(), 12, "6 scenarios × 2 models");
        // Claude is faster than O4-Mini on every scenario (paper: up to 7×).
        for scenario in scenario_names::FIGURE3 {
            let claude = out.cell(scenario, "Claude-3.7").expect("present");
            let o4 = out.cell(scenario, "O4-Mini").expect("present");
            assert!(
                o4.overhead.total_elapsed_secs > claude.overhead.total_elapsed_secs,
                "{scenario}: O4-Mini {} should exceed Claude {}",
                o4.overhead.total_elapsed_secs,
                claude.overhead.total_elapsed_secs
            );
            // Call counts are within the same order (≈ job count each).
            assert!(claude.overhead.call_count >= out.jobs_per_scenario);
        }
        assert!(out.render().contains("elapsed_s"));
    }
}
