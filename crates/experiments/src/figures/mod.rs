//! One module per paper figure.

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;

use rsched_metrics::table::fmt_ratio;
use rsched_metrics::{Metric, NormalizedReport, TextTable};
use rsched_simkit::stats::quantile;

/// Header row for a normalized-metrics table: scheduler + the eight
/// metrics in `Metric::all()` order.
pub(crate) fn metric_header() -> Vec<String> {
    let mut h = vec!["scheduler".to_string()];
    h.extend(Metric::all().into_iter().map(|m| m.name().to_string()));
    h
}

/// One table row of normalized ratios (omitted metrics render as `-`).
pub(crate) fn normalized_row(name: &str, report: &NormalizedReport) -> Vec<String> {
    let mut row = vec![name.to_string()];
    row.extend(Metric::all().into_iter().map(|m| fmt_ratio(report.get(m))));
    row
}

/// Build a normalized-metrics table from `(scheduler, report)` rows.
pub(crate) fn normalized_table(rows: &[(String, NormalizedReport)]) -> TextTable {
    let mut table = TextTable::new(metric_header());
    for (name, report) in rows {
        table.push_row(normalized_row(name, report));
    }
    table
}

/// Latency-distribution summary columns used by the overhead figures.
pub(crate) fn latency_columns() -> [&'static str; 6] {
    ["calls", "elapsed_s", "mean_s", "p50_s", "p95_s", "max_s"]
}

/// Summarize a latency sample into the [`latency_columns`] values.
pub(crate) fn latency_row(call_count: usize, elapsed: f64, latencies: &[f64]) -> [String; 6] {
    let fmt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.1}"),
        None => "-".to_string(),
    };
    let max = latencies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = if latencies.is_empty() {
        None
    } else {
        Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
    };
    [
        call_count.to_string(),
        format!("{elapsed:.0}"),
        fmt(mean),
        fmt(quantile(latencies, 0.5)),
        fmt(quantile(latencies, 0.95)),
        fmt(if latencies.is_empty() {
            None
        } else {
            Some(max)
        }),
    ]
}
