//! Figure 7: statistical robustness — five independent repetitions of the
//! full pipeline on Heterogeneous Mix with 100 dynamically arriving jobs,
//! box-plotting each normalized metric per scheduler (paper §4).
//!
//! The workload is fixed across repetitions (FCFS/SJF are deterministic and
//! plot flat, as in the paper); only the stochastic components vary — LLM
//! sampling noise and the optimizer's restart seed.

use std::fmt::Write as _;

use rsched_cluster::ClusterConfig;
use rsched_metrics::{normalize_against, Metric, MetricDistributions, TextTable};
use rsched_parallel::ThreadPool;
use rsched_simkit::rng::SeedTree;
use rsched_workloads::names as scenario_names;

use crate::options::ExperimentOptions;
use crate::runner::{policy_seed_named, run_matrix, scenario_jobs_named, MatrixCell, RunResult};
use rsched_registry::names;

/// Repetitions (5 in the paper).
pub const REPETITIONS: usize = 5;

/// Figure 7 results: per-scheduler normalized-metric distributions.
#[derive(Debug, Clone)]
pub struct Fig7Output {
    /// Jobs in the workload (100 in the paper).
    pub jobs: usize,
    /// `(scheduler, distributions)` in paper order.
    pub distributions: Vec<(String, MetricDistributions)>,
    /// The raw cells (rep-major), for the JSON artifacts.
    pub runs: Vec<RunResult>,
}

/// Run the Figure 7 experiment.
pub fn run(opts: &ExperimentOptions, pool: &ThreadPool) -> Fig7Output {
    let n = opts.scaled(100);
    let reps = if opts.quick { 3 } else { REPETITIONS };
    let tree = SeedTree::new(opts.seed).subtree("fig7", 0);
    let jobs = scenario_jobs_named(
        scenario_names::HETEROGENEOUS_MIX,
        n,
        tree.derive("workload", 0),
    )
    .expect("builtin scenario");
    let schedulers = names::PAPER_SET;

    let mut cells = Vec::new();
    for rep in 0..reps {
        for name in schedulers {
            cells.push(MatrixCell {
                scheduler: name.to_string(),
                scenario: format!("heterogeneous-mix/{n}/rep{rep}"),
                jobs: jobs.clone(),
                cluster: ClusterConfig::paper_default(),
                policy_seed: policy_seed_named(tree.derive("rep", rep as u64), name, rep as u64),
                solver: opts.solver,
            });
        }
    }
    let results = run_matrix(cells, pool);

    // FCFS is deterministic over the fixed workload: its first-rep report is
    // the normalization baseline for every repetition.
    let baseline = results
        .iter()
        .find(|r| r.scheduler == "FCFS")
        .expect("FCFS present")
        .report;

    let mut distributions: Vec<(String, MetricDistributions)> = schedulers
        .iter()
        .map(|name| (name.to_string(), MetricDistributions::new()))
        .collect();
    for (i, result) in results.iter().enumerate() {
        let scheduler_idx = i % schedulers.len();
        let normalized = normalize_against(&result.report, &baseline);
        distributions[scheduler_idx].1.push_normalized(&normalized);
    }

    Fig7Output {
        jobs: n,
        distributions,
        runs: results,
    }
}

impl Fig7Output {
    /// Distributions for one scheduler.
    pub fn scheduler(&self, name: &str) -> Option<&MetricDistributions> {
        self.distributions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
    }

    /// Render one box-plot table per metric.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 7 — robustness over {} repetitions, Heterogeneous Mix, {} jobs \
             (normalized vs FCFS)\n",
            REPETITIONS, self.jobs
        );
        for metric in Metric::all() {
            let _ = writeln!(out, "## {}", metric.name());
            let mut table = TextTable::new([
                "scheduler",
                "n",
                "min",
                "q1",
                "median",
                "q3",
                "max",
                "outliers",
            ]);
            for (name, dist) in &self.distributions {
                match dist.boxplot(metric) {
                    Some(b) => table.push_row([
                        name.clone(),
                        b.count.to_string(),
                        format!("{:.3}", b.min),
                        format!("{:.3}", b.q1),
                        format!("{:.3}", b.median),
                        format!("{:.3}", b.q3),
                        format!("{:.3}", b.max),
                        b.outliers.len().to_string(),
                    ]),
                    None => table.push_row([
                        name.clone(),
                        "0".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]),
                }
            }
            let _ = writeln!(out, "{}", table.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cpsolver::SolverConfig;

    #[test]
    fn deterministic_baselines_are_flat_and_llms_have_bounded_spread() {
        let pool = ThreadPool::new(4);
        let opts = ExperimentOptions {
            seed: 9,
            quick: true,
            solver: SolverConfig {
                sa_iterations_per_task: 30,
                sa_iteration_cap: 600,
                exact_max_tasks: 5,
                ..SolverConfig::default()
            },
        };
        let out = run(&opts, &pool);
        assert_eq!(out.distributions.len(), 5);

        // FCFS and SJF plot flat: zero IQR on every defined metric.
        for name in ["FCFS", "SJF"] {
            let dist = out.scheduler(name).expect("present");
            for metric in Metric::all() {
                if let Some(b) = dist.boxplot(metric) {
                    assert!(
                        b.iqr() < 1e-12,
                        "{name}/{}: deterministic policies must be flat",
                        metric.name()
                    );
                }
            }
        }
        // The LLM rows exist with one sample per repetition.
        let claude = out.scheduler("Claude-3.7").expect("present");
        assert_eq!(claude.len(Metric::Makespan), 3, "quick mode runs 3 reps");
        assert!(out.render().contains("median"));
    }
}
