//! Figure 3: normalized performance metrics across six workload scenarios
//! with 60 jobs each (paper §3.5).
//!
//! Heterogeneous Mix is excluded (it is covered by the §3.6 scalability
//! analysis), and average wait is omitted whenever FCFS achieved zero wait
//! (the 0/0 rule) — both exactly as in the paper.

use std::fmt::Write as _;

use rsched_cluster::ClusterConfig;
use rsched_metrics::NormalizedReport;
use rsched_parallel::ThreadPool;
use rsched_simkit::rng::SeedTree;
use rsched_workloads::{names as scenario_names, scenario_builtins};

use crate::figures::normalized_table;
use crate::options::ExperimentOptions;
use crate::runner::{
    normalize_table, policy_seed_named, run_matrix, scenario_jobs_named, MatrixCell, RunResult,
};
use rsched_registry::names;

/// Figure 3 results: per-scenario normalized tables.
#[derive(Debug, Clone)]
pub struct Fig3Output {
    /// Jobs per scenario instance (60 in the paper).
    pub jobs_per_scenario: usize,
    /// `(scenario name, rows)` in presentation order.
    pub scenarios: Vec<(String, Vec<(String, NormalizedReport)>)>,
    /// The raw (pre-normalization) cells, for the JSON artifacts.
    pub runs: Vec<RunResult>,
}

/// Run the Figure 3 experiment.
pub fn run(opts: &ExperimentOptions, pool: &ThreadPool) -> Fig3Output {
    let n = opts.scaled(60);
    let tree = SeedTree::new(opts.seed).subtree("fig3", 0);
    let schedulers = names::PAPER_SET;

    let mut cells = Vec::new();
    for (s_idx, scenario) in scenario_names::FIGURE3.into_iter().enumerate() {
        let jobs = scenario_jobs_named(scenario, n, tree.derive(scenario, 0))
            .expect("figure-3 scenarios are builtin");
        for name in schedulers {
            cells.push(MatrixCell {
                scheduler: name.to_string(),
                scenario: format!("{scenario}/{n}"),
                jobs: jobs.clone(),
                cluster: ClusterConfig::paper_default(),
                policy_seed: policy_seed_named(tree.derive("policy", s_idx as u64), name, 0),
                solver: opts.solver,
            });
        }
    }
    let results = run_matrix(cells, pool);

    let scenarios = scenario_names::FIGURE3
        .into_iter()
        .enumerate()
        .map(|(s_idx, scenario)| {
            let slice = &results[s_idx * schedulers.len()..(s_idx + 1) * schedulers.len()];
            (scenario.to_string(), normalize_table(slice, "FCFS"))
        })
        .collect();

    Fig3Output {
        jobs_per_scenario: n,
        scenarios,
        runs: results,
    }
}

impl Fig3Output {
    /// Render all per-scenario tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 3 — normalized metrics (vs FCFS = 1.00x), {} jobs per scenario\n",
            self.jobs_per_scenario
        );
        for (scenario, rows) in &self.scenarios {
            let title = scenario_builtins().title(scenario).unwrap_or(scenario);
            let _ = writeln!(out, "## {title}");
            let _ = writeln!(out, "{}", normalized_table(rows).render());
        }
        out
    }

    /// Rows for one scenario, by registry name.
    pub fn scenario_rows(&self, scenario: &str) -> Option<&[(String, NormalizedReport)]> {
        self.scenarios
            .iter()
            .find(|(s, _)| s == scenario)
            .map(|(_, rows)| rows.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cpsolver::SolverConfig;
    use rsched_metrics::Metric;

    fn tiny_opts() -> ExperimentOptions {
        ExperimentOptions {
            seed: 11,
            quick: true,
            solver: SolverConfig {
                sa_iterations_per_task: 30,
                sa_iteration_cap: 600,
                exact_max_tasks: 5,
                ..SolverConfig::default()
            },
        }
    }

    #[test]
    fn produces_six_scenarios_with_five_schedulers() {
        let pool = ThreadPool::new(4);
        let out = run(&tiny_opts(), &pool);
        assert_eq!(out.scenarios.len(), 6);
        for (scenario, rows) in &out.scenarios {
            assert_eq!(rows.len(), 5, "{scenario}");
            assert_eq!(rows[0].0, "FCFS");
            // FCFS normalizes to 1.0 on every defined metric.
            for (_, v) in rows[0].1.defined() {
                assert!((v - 1.0).abs() < 1e-9);
            }
        }
        let text = out.render();
        assert!(text.contains("Long-Job Dominant"));
        assert!(text.contains("Claude-3.7"));
    }

    #[test]
    fn adversarial_scenario_is_flat_across_methods() {
        // Paper: "Adversarial conditions lead to flattened differences."
        let pool = ThreadPool::new(4);
        let out = run(&tiny_opts(), &pool);
        let rows = out
            .scenario_rows(scenario_names::ADVERSARIAL)
            .expect("present");
        for (name, report) in rows {
            if let Some(v) = report.get(Metric::Makespan) {
                assert!(
                    (0.8..1.2).contains(&v),
                    "{name} makespan ratio {v} should be near 1.0"
                );
            }
        }
    }
}
