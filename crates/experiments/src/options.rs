//! Shared experiment options and a minimal CLI-flag parser for the figure
//! binaries.

use rsched_cpsolver::SolverConfig;

/// Options shared by every figure harness.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOptions {
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Scale factor: `quick` shrinks job counts ~4× for smoke runs and CI.
    pub quick: bool,
    /// Solver budget for the OR-Tools baseline.
    pub solver: SolverConfig,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            seed: 2025,
            quick: false,
            solver: SolverConfig::default(),
        }
    }
}

impl ExperimentOptions {
    /// Parse `--seed N` and `--quick` from the process args (unknown flags
    /// are rejected with a message listing the supported ones).
    pub fn from_args() -> Result<Self, String> {
        let mut opts = ExperimentOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--seed requires a value".to_string())?;
                    opts.seed = value
                        .parse()
                        .map_err(|e| format!("bad --seed `{value}`: {e}"))?;
                }
                "--help" | "-h" => {
                    return Err("usage: [--seed N] [--quick]".to_string());
                }
                other => return Err(format!("unknown flag `{other}` (try --help)")),
            }
        }
        Ok(opts)
    }

    /// Scale a job count down in quick mode (minimum 8).
    pub fn scaled(&self, n: usize) -> usize {
        if self.quick {
            (n / 4).max(8)
        } else {
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = ExperimentOptions::default();
        assert_eq!(o.seed, 2025);
        assert!(!o.quick);
    }

    #[test]
    fn scaling() {
        let mut o = ExperimentOptions::default();
        assert_eq!(o.scaled(60), 60);
        o.quick = true;
        assert_eq!(o.scaled(60), 15);
        assert_eq!(o.scaled(10), 8);
    }
}
