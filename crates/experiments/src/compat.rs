//! **Deprecated shims** for the pre-registry, enum-addressed harness API.
//!
//! [`SchedulerKind`] predates the open
//! [`PolicyRegistry`](rsched_registry::PolicyRegistry); each variant is now
//! a thin alias for a registry name, and the shim functions delegate to the
//! name-addressed API in [`crate::runner`]. Prefer registry names — they
//! cover policies this closed enum can never know about.

use rsched_cluster::{ClusterConfig, JobSpec};
use rsched_cpsolver::SolverConfig;
use rsched_registry::names;
#[allow(deprecated)]
use rsched_workloads::ScenarioKind;

use crate::runner::{policy_seed_named, run_named, scenario_jobs_named, RunResult};

/// The compared schedulers, as a closed enum. **Deprecated**: prefer the
/// registry names in [`rsched_registry::names`].
#[deprecated(note = "address schedulers by registry name (`rsched_registry::names`)")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-come-first-served (the normalization baseline).
    Fcfs,
    /// Shortest job first.
    Sjf,
    /// The optimization baseline (OR-Tools substitute).
    OrTools,
    /// Simulated Claude 3.7 ReAct agent.
    Claude37,
    /// Simulated O4-Mini ReAct agent.
    O4Mini,
    /// FCFS + EASY backfilling (ablation).
    Easy,
    /// Random eligible pick (ablation floor).
    Random,
}

#[allow(deprecated)]
impl SchedulerKind {
    /// The paper's five compared schedulers, in figure order.
    pub fn all_paper() -> [SchedulerKind; 5] {
        [
            SchedulerKind::Fcfs,
            SchedulerKind::Sjf,
            SchedulerKind::OrTools,
            SchedulerKind::Claude37,
            SchedulerKind::O4Mini,
        ]
    }

    /// The two LLM agents (overhead figures).
    pub fn llm_pair() -> [SchedulerKind; 2] {
        [SchedulerKind::Claude37, SchedulerKind::O4Mini]
    }

    /// The registry name this variant aliases (also the display name used
    /// in tables).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => names::FCFS,
            SchedulerKind::Sjf => names::SJF,
            SchedulerKind::OrTools => names::OR_TOOLS,
            SchedulerKind::Claude37 => names::CLAUDE37,
            SchedulerKind::O4Mini => names::O4_MINI,
            SchedulerKind::Easy => names::EASY,
            SchedulerKind::Random => names::RANDOM,
        }
    }
}

/// **Deprecated shim** over [`scenario_jobs_named`] for enum-addressed
/// callers (identical output: the registry generators key their seed trees
/// by the same slugs).
#[deprecated(note = "use `scenario_jobs_named` with a scenario name")]
#[allow(deprecated)]
pub fn scenario_jobs(scenario: ScenarioKind, n: usize, seed: u64) -> Vec<JobSpec> {
    scenario_jobs_named(scenario.slug(), n, seed)
        .expect("every ScenarioKind aliases a builtin scenario name")
}

/// **Deprecated shim** over [`run_named`] for enum-addressed callers.
#[deprecated(note = "use `run_named` with a registry name")]
#[allow(deprecated)]
pub fn run_policy(
    kind: SchedulerKind,
    jobs: &[JobSpec],
    cluster: ClusterConfig,
    policy_seed: u64,
    solver: &SolverConfig,
) -> RunResult {
    run_named(kind.name(), jobs, cluster, policy_seed, solver)
        .expect("every SchedulerKind aliases a builtin registry name")
}

/// **Deprecated shim** over [`policy_seed_named`] (derives from
/// `kind.name()`, so values are identical to the pre-registry harness).
#[deprecated(note = "use `policy_seed_named` with a registry name")]
#[allow(deprecated)]
pub fn policy_seed(root: u64, kind: SchedulerKind, rep: u64) -> u64 {
    policy_seed_named(root, kind.name(), rep)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::runner::scenario_jobs;
    use rsched_workloads::ScenarioKind;

    fn quick_solver() -> SolverConfig {
        SolverConfig {
            sa_iterations_per_task: 40,
            sa_iteration_cap: 800,
            exact_max_tasks: 6,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn kind_shim_matches_named_runs() {
        let jobs = scenario_jobs(ScenarioKind::ResourceSparse, 10, 4);
        for kind in SchedulerKind::all_paper() {
            let via_kind = run_policy(
                kind,
                &jobs,
                ClusterConfig::paper_default(),
                5,
                &quick_solver(),
            );
            let via_name = run_named(
                kind.name(),
                &jobs,
                ClusterConfig::paper_default(),
                5,
                &quick_solver(),
            )
            .expect("builtin");
            assert_eq!(via_kind.scheduler, via_name.scheduler);
            assert_eq!(via_kind.stats, via_name.stats, "{}", kind.name());
            assert_eq!(
                via_kind.report.makespan_secs,
                via_name.report.makespan_secs,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn policy_seeds_are_stable_and_distinct() {
        let a = policy_seed_named(2025, names::CLAUDE37, 0);
        assert_eq!(a, policy_seed(2025, SchedulerKind::Claude37, 0));
        assert_ne!(a, policy_seed_named(2025, names::CLAUDE37, 1));
        assert_ne!(a, policy_seed_named(2025, names::O4_MINI, 0));
    }
}
