//! Run a declarative sweep campaign from a TOML spec:
//!
//! ```text
//! cargo run --release -p rsched-experiments --bin campaign -- fixtures/campaigns/paper_grid.toml
//! ```
//!
//! The grid (policies × scenarios × jobs × seeds) executes on a
//! machine-sized work-stealing pool with a per-cell result cache under
//! `results/campaigns/<name>/cells/` — rerunning skips every
//! already-computed cell and reproduces `summary.json` byte for byte.
//! Progress streams to stderr; the per-`(scenario, jobs)` Pareto-rank
//! tables print to stdout at the end.
//!
//! Flags: `--out-root <dir>` redirects output (default
//! `results/campaigns/`); `--workers <n>` sizes the pool explicitly
//! (default: machine parallelism) — results are byte-identical for every
//! worker count, cells merge in grid order; `--quiet` silences per-cell
//! progress.

use rsched_campaign::{
    Campaign, CampaignOutcome, CampaignSpec, NullObserver, ProgressCampaignObserver,
};
use rsched_metrics::TextTable;
use rsched_parallel::ThreadPool;

fn usage() -> ! {
    eprintln!("usage: campaign [--out-root <dir>] [--workers <n>] [--quiet] <spec.toml>");
    std::process::exit(2);
}

fn main() {
    let mut spec_path: Option<String> = None;
    let mut out_root: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quiet" => quiet = true,
            "--out-root" => match args.next() {
                Some(dir) => out_root = Some(dir),
                None => usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    usage();
                }
            }
        }
    }
    let Some(spec_path) = spec_path else { usage() };

    let spec = match CampaignSpec::load(&spec_path) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut campaign = Campaign::new(spec);
    if let Some(root) = out_root {
        campaign = campaign.out_root(root);
    }

    let pool = match workers {
        Some(n) => ThreadPool::new(n),
        None => ThreadPool::available_parallelism(),
    };
    let outcome = if quiet {
        campaign.run_observed(&pool, &mut NullObserver)
    } else {
        campaign.run_observed(&pool, &mut ProgressCampaignObserver::stderr())
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    render(&outcome);
}

fn render(outcome: &CampaignOutcome) {
    let summary = &outcome.summary;
    println!(
        "campaign `{}`: {} cells ({} cached, {} ran)\n",
        summary.campaign,
        outcome.results.len(),
        outcome.cached,
        outcome.ran
    );
    for group in &summary.fronts {
        println!(
            "── {} / {} jobs (front hypervolume {:.4}) ──",
            group.scenario, group.jobs, group.front_hypervolume
        );
        let mut columns = vec!["policy".to_string(), "rank".to_string(), "hv".to_string()];
        columns.extend(summary.objectives.iter().map(|m| m.key().to_string()));
        columns.push("dominated_by".to_string());
        let mut table = TextTable::new(columns);
        for row in &group.rows {
            let mut cells = vec![
                row.policy.clone(),
                if row.rank == usize::MAX {
                    "—".to_string()
                } else {
                    row.rank.to_string()
                },
                format!("{:.4}", row.hypervolume),
            ];
            cells.extend(row.objectives.iter().map(|v| format!("{v:.3}")));
            cells.push(if row.dominated_by.is_empty() {
                "—".to_string()
            } else {
                row.dominated_by.join(", ")
            });
            table.push_row(cells);
        }
        println!("{}", table.render());
    }
    println!(
        "wrote {}/summary.json and {}/fronts.csv",
        outcome.out_dir.display(),
        outcome.out_dir.display()
    );
}
