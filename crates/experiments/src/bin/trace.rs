//! Export a fully-instrumented simulation run: epoch provenance, kernel
//! spans, metrics, and a Chrome trace-event document.
//!
//! ```text
//! cargo run --release -p rsched-experiments --bin trace -- \
//!     --policy Conservative --scenario heterogeneous_mix --jobs 200 --seed 7 \
//!     --out trace-out
//! ```
//!
//! Writes four artifacts under `--out`:
//!
//! * `trace.jsonl` — one JSON object per epoch (outcome + machine-readable
//!   delay reason) followed by one per kernel span; deterministic fields
//!   only, so identical seeds produce byte-identical files;
//! * `metrics.json` — the metrics-registry snapshot (byte-stable);
//! * `metrics.prom` — the same snapshot in Prometheus text exposition
//!   format;
//! * `chrome_trace.json` — load in `chrome://tracing` / Perfetto. Span
//!   durations use wall-clock timings only under `--wall` (which trades
//!   away byte-determinism of this one file).
//!
//! A provenance summary (epochs by outcome and delay reason) prints to
//! stdout.

use std::collections::BTreeMap;

use rsched_cluster::ClusterConfig;
use rsched_registry::{PolicyContext, PolicyRegistry};
use rsched_sim::{Simulation, TelemetrySink};
use rsched_telemetry::export;
use rsched_workloads::{scenario_builtins, ArrivalMode, ScenarioContext};

fn usage() -> ! {
    eprintln!(
        "usage: trace [--policy <name>] [--scenario <name>|swf:<path>] [--jobs N] [--seed N]\n\
         \x20            [--out <dir>] [--wall]\n\
         \n\
         Runs the virtual-time simulator with a recording telemetry sink and writes\n\
         trace.jsonl, metrics.json, metrics.prom, and chrome_trace.json under --out\n\
         (default trace-out). --wall stamps Chrome trace durations from the wall\n\
         clock instead of zeros."
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => usage(),
    }
}

fn main() {
    let mut policy_name = "Conservative".to_string();
    let mut scenario = "heterogeneous_mix".to_string();
    let mut jobs_n: usize = 64;
    let mut seed: u64 = 42;
    let mut out_dir = "trace-out".to_string();
    let mut wall = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => policy_name = parse_or_usage(args.next()),
            "--scenario" => scenario = parse_or_usage(args.next()),
            "--jobs" => jobs_n = parse_or_usage(args.next()),
            "--seed" => seed = parse_or_usage(args.next()),
            "--out" => out_dir = parse_or_usage(args.next()),
            "--wall" => wall = true,
            _ => usage(),
        }
    }

    let cluster = ClusterConfig::paper_default();
    let workload = match scenario_builtins().generate(
        &scenario,
        &ScenarioContext::new(jobs_n)
            .with_mode(ArrivalMode::Dynamic)
            .with_seed(seed),
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("scenario {scenario:?}: {e}");
            std::process::exit(1);
        }
    };
    let jobs = workload.jobs;
    let registry = PolicyRegistry::with_builtins();
    let ctx = PolicyContext::new(&jobs, cluster).with_seed(seed);
    let Ok(mut policy) = registry.build(&policy_name, &ctx) else {
        eprintln!(
            "unknown policy {policy_name:?}; builtins: {}",
            registry.names().join(", ")
        );
        std::process::exit(1);
    };

    let sink = if wall {
        TelemetrySink::recording_with_wall()
    } else {
        TelemetrySink::recording()
    };
    let outcome = match Simulation::new(cluster)
        .jobs(&jobs)
        .telemetry(&sink)
        .run(policy.as_mut())
    {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("simulation error: {e}");
            std::process::exit(1);
        }
    };

    let spans = sink.spans().unwrap_or_default();
    let snapshot = sink.snapshot().expect("recording sink snapshots");
    let mut trace = export::epochs_to_jsonl(&outcome.epochs);
    trace.push_str(&export::spans_to_jsonl(&spans));

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        std::process::exit(1);
    }
    let write = |file: &str, contents: &str| {
        let path = format!("{out_dir}/{file}");
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} ({} bytes)", contents.len());
    };
    write("trace.jsonl", &trace);
    write("metrics.json", &snapshot.to_json());
    write("metrics.prom", &export::prometheus(&snapshot, "rsched_"));
    write("chrome_trace.json", &export::chrome_trace(&spans));

    // Provenance summary: epochs grouped by outcome, delays by reason.
    let mut by_outcome: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_reason: BTreeMap<&str, usize> = BTreeMap::new();
    for epoch in &outcome.epochs {
        *by_outcome.entry(epoch.outcome.code()).or_default() += 1;
        if let Some(reason) = &epoch.reason {
            *by_reason.entry(reason.code()).or_default() += 1;
        }
    }
    println!(
        "trace: policy={} scenario={scenario} jobs={} seed={seed} epochs={} spans={}",
        outcome.policy_name,
        jobs.len(),
        outcome.epochs.len(),
        spans.len(),
    );
    for (code, n) in &by_outcome {
        println!("  outcome {code}: {n}");
    }
    for (code, n) in &by_reason {
        println!("  reason {code}: {n}");
    }
}
