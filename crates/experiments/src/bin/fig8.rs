//! Regenerates the paper's Figure 8. See `rsched_experiments::figures::fig8`.

use rsched_experiments::figures::fig8;
use rsched_experiments::ExperimentOptions;
use rsched_parallel::ThreadPool;

fn main() {
    let opts = match ExperimentOptions::from_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let pool = ThreadPool::available_parallelism();
    let output = fig8::run(&opts, &pool);
    print!("{}", output.render());
}
