//! Persona-weight ablation sweep (see `rsched_experiments::figures::ablation`).

use rsched_experiments::figures::ablation;
use rsched_experiments::ExperimentOptions;
use rsched_parallel::ThreadPool;

fn main() {
    let opts = match ExperimentOptions::from_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let pool = ThreadPool::available_parallelism();
    print!("{}", ablation::run(&opts, &pool).render());
}
