//! Run any registry policy as a scheduler *service* against a scenario or
//! SWF-replayed arrival stream:
//!
//! ```text
//! # Deterministic replay through the service driver (bit-identical to the
//! # virtual-time simulator), with the full metrics report:
//! cargo run --release -p rsched-experiments --bin serve -- \
//!     --policy EASY --scenario heterogeneous_mix --jobs 200 --seed 7
//!
//! # The same stream through the live multi-tenant daemon (own thread,
//! # manual clock, per-tenant admission control):
//! cargo run --release -p rsched-experiments --bin serve -- \
//!     --policy FCFS --scenario long_tail --jobs 500 --daemon \
//!     --rate 64/8 --max-queued 256 --fair-share
//! ```
//!
//! Scenario names resolve through the open scenario registry, so
//! `--scenario swf:<path>` replays a Standard Workload Format archive as
//! the arrival stream. Tenant identity is each job's submitting user.

use rsched_cluster::ClusterConfig;
use rsched_metrics::MetricsReport;
use rsched_registry::{PolicyContext, PolicyRegistry};
use rsched_service::{
    replay_with_telemetry, FairShareConfig, ManualClock, RateLimit, ServiceClock, ServiceConfig,
    ServiceDaemon, TenantId,
};
use rsched_sim::SimOptions;
use rsched_simkit::{SimDuration, SimTime};
use rsched_workloads::{scenario_builtins, ArrivalMode, ScenarioContext};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--policy <name>] [--scenario <name>|swf:<path>] [--jobs N] [--seed N]\n\
         \x20            [--daemon] [--tick-ms N] [--rate <burst>/<per_sec>] [--max-queued N]\n\
         \x20            [--fair-share] [--metrics]\n\
         \n\
         Default mode replays the arrival stream through the service driver at exact\n\
         event times (bit-identical to the virtual-time simulator) and prints the\n\
         metrics report. --daemon runs the stream through the live service thread\n\
         with admission control instead. --metrics (replay mode) attaches a recording\n\
         telemetry sink and prints a Prometheus text exposition scrape after the run."
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => usage(),
    }
}

fn main() {
    let mut policy_name = "FCFS".to_string();
    let mut scenario = "heterogeneous_mix".to_string();
    let mut jobs_n: usize = 64;
    let mut seed: u64 = 42;
    let mut daemon_mode = false;
    let mut tick_ms: u64 = 100;
    let mut rate: Option<RateLimit> = None;
    let mut max_queued: Option<usize> = None;
    let mut fair_share = false;
    let mut metrics = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => policy_name = parse_or_usage(args.next()),
            "--scenario" => scenario = parse_or_usage(args.next()),
            "--jobs" => jobs_n = parse_or_usage(args.next()),
            "--seed" => seed = parse_or_usage(args.next()),
            "--daemon" => daemon_mode = true,
            "--tick-ms" => tick_ms = parse_or_usage(args.next()),
            "--rate" => {
                let spec: String = parse_or_usage(args.next());
                let Some((burst, per_sec)) = spec.split_once('/') else {
                    usage()
                };
                let (Ok(burst), Ok(per_sec)) = (burst.parse(), per_sec.parse()) else {
                    usage()
                };
                rate = Some(RateLimit { burst, per_sec });
            }
            "--max-queued" => max_queued = Some(parse_or_usage(args.next())),
            "--fair-share" => fair_share = true,
            "--metrics" => metrics = true,
            _ => usage(),
        }
    }

    let cluster = ClusterConfig::paper_default();
    let workload = match scenario_builtins().generate(
        &scenario,
        &ScenarioContext::new(jobs_n)
            .with_mode(ArrivalMode::Dynamic)
            .with_seed(seed),
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("scenario {scenario:?}: {e}");
            std::process::exit(1);
        }
    };
    let jobs = workload.jobs;
    let registry = PolicyRegistry::with_builtins();
    let ctx = PolicyContext::new(&jobs, cluster).with_seed(seed);
    let Ok(policy) = registry.build(&policy_name, &ctx) else {
        eprintln!(
            "unknown policy {policy_name:?}; builtins: {}",
            registry.names().join(", ")
        );
        std::process::exit(1);
    };
    println!(
        "serve: policy={} scenario={scenario} jobs={} seed={seed} mode={}",
        policy.name(),
        jobs.len(),
        if daemon_mode { "daemon" } else { "replay" },
    );

    if daemon_mode {
        let mut config = ServiceConfig::new(cluster);
        config.tick = SimDuration::from_millis(tick_ms);
        config.admission.default_tenant.rate = rate;
        config.admission.default_tenant.max_queued = max_queued;
        config.admission.fair_share = FairShareConfig {
            enabled: fair_share,
            ..FairShareConfig::default()
        };

        let start = jobs.iter().map(|j| j.submit).min().unwrap_or(SimTime::ZERO);
        let clock = ManualClock::starting_at(start);
        let feeder = clock.clone();
        let daemon = ServiceDaemon::spawn(config, clock, {
            // Rebuild the policy on the daemon thread: policy boxes are
            // deliberately not Send (LLM-backed policies hold Rc state).
            let jobs = jobs.clone();
            move || {
                let ctx = PolicyContext::new(&jobs, cluster).with_seed(seed);
                PolicyRegistry::with_builtins()
                    .build(&policy_name, &ctx)
                    .expect("policy name validated above")
            }
        });
        let handle = daemon.handle();
        let mut stream = jobs.clone();
        stream.sort_by_key(|j| (j.submit, j.id));
        for job in stream {
            // Walk the shared clock to each arrival so the daemon's ticks
            // interleave with the stream like wall time would.
            if job.submit > feeder.now() {
                feeder.set(job.submit);
            }
            let tenant = TenantId(job.user.0);
            if handle.submit(tenant, job).is_err() {
                eprintln!("daemon stopped early");
                std::process::exit(1);
            }
        }
        match daemon.drain() {
            Ok(report) => {
                println!(
                    "report: submitted={} admitted={} rejected={} completed={} dropped={} ticks={}",
                    report.submitted,
                    report.admitted,
                    report.rejected,
                    report.completed,
                    report.dropped_requests,
                    report.ticks,
                );
                println!("tick latency: {}", report.tick_latency);
                println!(
                    "kernel: queries={} placements={} backfills={} delays={} epochs={}",
                    report.stats.queries,
                    report.stats.placements,
                    report.stats.backfills,
                    report.stats.delays,
                    report.stats.epochs,
                );
            }
            Err(e) => {
                eprintln!("service error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        // The daemon runs its core on another thread; the Rc-based sink is
        // deliberately single-threaded, so --metrics is a replay-mode flag.
        let sink = if metrics {
            rsched_sim::TelemetrySink::recording()
        } else {
            rsched_sim::TelemetrySink::disabled()
        };
        match replay_with_telemetry(
            cluster,
            &jobs,
            policy,
            &SimOptions::default(),
            &mut [],
            &sink,
        ) {
            Ok(outcome) => {
                println!(
                    "outcome: completed={} decisions={} end={}s",
                    outcome.records.len(),
                    outcome.decisions.len(),
                    outcome.end_time.as_secs_f64(),
                );
                let report = MetricsReport::compute(&outcome.records, cluster);
                println!("{report}");
                if let Some(snapshot) = sink.snapshot() {
                    print!(
                        "{}",
                        rsched_telemetry::export::prometheus(&snapshot, "rsched_")
                    );
                }
            }
            Err(e) => {
                eprintln!("service error: {e}");
                std::process::exit(1);
            }
        }
    }
}
