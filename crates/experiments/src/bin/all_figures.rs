//! Regenerates every figure of the paper's evaluation in one run, printing
//! the paper-style tables and writing machine-readable artifacts under
//! `results/`: per-figure CSVs plus per-cell JSON documents
//! (`results/cells/*.json`) whose raw metrics/stats/overhead are diffable
//! across commits.
//!
//! `--quick` runs shrunken grids whose cells are **not** the tracked
//! artifacts, so quick-mode cell JSONs are routed to the scratch
//! directory `results/quick/cells/` (gitignored) instead of overwriting
//! the tracked `results/cells/`.

use std::fs;
use std::path::Path;

use rsched_experiments::artifact::write_cells_json;
use rsched_experiments::figures::{ablation, fig3, fig4, fig5, fig6, fig7, fig8};
use rsched_experiments::output::{normalized_rows_to_csv, overhead_rows_to_csv};
use rsched_experiments::runner::RunResult;
use rsched_experiments::ExperimentOptions;
use rsched_parallel::ThreadPool;
use rsched_workloads::scenario_builtins;

/// The human-readable title of a registry scenario name (CSV labels keep
/// the paper's figure names).
fn scenario_title(name: &str) -> String {
    scenario_builtins().title(name).unwrap_or(name).to_string()
}

fn write(path: &str, content: &str) {
    let path = Path::new(path);
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

fn write_cells(cells_dir: &Path, figure: &str, runs: &[RunResult]) {
    match write_cells_json(cells_dir, figure, runs) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write cells for {figure}: {e}"),
    }
}

fn main() {
    let opts = match ExperimentOptions::from_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    // Quick-mode cells describe shrunken grids; keep them out of the
    // git-tracked full-scale artifacts.
    let cells_dir = if opts.quick {
        Path::new("results/quick/cells")
    } else {
        Path::new("results/cells")
    };
    let pool = ThreadPool::available_parallelism();

    let f3 = fig3::run(&opts, &pool);
    print!("{}", f3.render());
    let rows: Vec<(Vec<String>, _)> = f3
        .scenarios
        .iter()
        .flat_map(|(scenario, rows)| {
            rows.iter()
                .map(move |(name, report)| (vec![scenario_title(scenario), name.clone()], *report))
        })
        .collect();
    write(
        "results/fig3.csv",
        &normalized_rows_to_csv(&["scenario", "scheduler"], &rows),
    );
    write_cells(cells_dir, "fig3", &f3.runs);

    let f4 = fig4::run(&opts, &pool);
    print!("{}", f4.render());
    let rows: Vec<(Vec<String>, _)> = f4
        .sizes
        .iter()
        .flat_map(|(n, rows)| {
            rows.iter()
                .map(move |(name, report)| (vec![n.to_string(), name.clone()], *report))
        })
        .collect();
    write(
        "results/fig4.csv",
        &normalized_rows_to_csv(&["jobs", "scheduler"], &rows),
    );
    write_cells(cells_dir, "fig4", &f4.runs);

    let f5 = fig5::run(&opts, &pool);
    print!("{}", f5.render());
    let rows: Vec<(Vec<String>, _)> = f5
        .cells
        .iter()
        .map(|c| {
            (
                vec![scenario_title(&c.scenario), c.model.clone()],
                c.overhead.clone(),
            )
        })
        .collect();
    write(
        "results/fig5.csv",
        &overhead_rows_to_csv(&["scenario", "model"], &rows),
    );
    write_cells(cells_dir, "fig5", &f5.runs);

    let f6 = fig6::run(&opts, &pool);
    print!("{}", f6.render());
    let rows: Vec<(Vec<String>, _)> = f6
        .cells
        .iter()
        .map(|c| {
            (
                vec![c.jobs.to_string(), c.model.clone()],
                c.overhead.clone(),
            )
        })
        .collect();
    write(
        "results/fig6.csv",
        &overhead_rows_to_csv(&["jobs", "model"], &rows),
    );
    write_cells(cells_dir, "fig6", &f6.runs);

    let f7 = fig7::run(&opts, &pool);
    print!("{}", f7.render());
    {
        use rsched_metrics::Metric;
        let mut rows: Vec<Vec<String>> = vec![[
            "scheduler",
            "metric",
            "n",
            "min",
            "q1",
            "median",
            "q3",
            "max",
            "outliers",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()];
        for (name, dist) in &f7.distributions {
            for metric in Metric::all() {
                if let Some(b) = dist.boxplot(metric) {
                    rows.push(vec![
                        name.clone(),
                        metric.name().replace(' ', "_").to_lowercase(),
                        b.count.to_string(),
                        format!("{:.6}", b.min),
                        format!("{:.6}", b.q1),
                        format!("{:.6}", b.median),
                        format!("{:.6}", b.q3),
                        format!("{:.6}", b.max),
                        b.outliers.len().to_string(),
                    ]);
                }
            }
        }
        write("results/fig7.csv", &rsched_simkit::csv::write_rows(rows));
        write_cells(cells_dir, "fig7", &f7.runs);
    }

    let f8 = fig8::run(&opts, &pool);
    print!("{}", f8.render());
    let rows: Vec<(Vec<String>, _)> = f8
        .rows
        .iter()
        .map(|(name, report)| (vec![name.clone()], *report))
        .collect();
    write(
        "results/fig8.csv",
        &normalized_rows_to_csv(&["scheduler"], &rows),
    );
    write_cells(cells_dir, "fig8", &f8.runs);

    let ab = ablation::run(&opts, &pool);
    print!("{}", ab.render());
    let rows: Vec<(Vec<String>, _)> = ab
        .rows
        .iter()
        .map(|(name, report)| (vec![name.clone()], *report))
        .collect();
    write(
        "results/ablation.csv",
        &normalized_rows_to_csv(&["persona"], &rows),
    );
    write_cells(cells_dir, "ablation", &ab.runs);
}
