//! Running one (scheduler, workload) cell and fanning out the matrix.

use rsched_cluster::{ClusterConfig, JobSpec};
use rsched_core::LlmSchedulingPolicy;
use rsched_cpsolver::SolverConfig;
use rsched_metrics::{normalize_against, MetricsReport, NormalizedReport};
use rsched_parallel::ThreadPool;
use rsched_schedulers::{EasyBackfill, Fcfs, OrToolsPolicy, RandomPolicy, Sjf};
use rsched_sim::{run_simulation, SchedulingPolicy, SimOptions, SimOutcome, SimStats};
use rsched_simkit::rng::SeedTree;
use rsched_workloads::{generate, ArrivalMode, ScenarioKind};

/// The compared schedulers. `all_paper()` is the paper's comparison set;
/// `Easy` and `Random` are this repository's ablation extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-come-first-served (the normalization baseline).
    Fcfs,
    /// Shortest job first.
    Sjf,
    /// The optimization baseline (OR-Tools substitute).
    OrTools,
    /// Simulated Claude 3.7 ReAct agent.
    Claude37,
    /// Simulated O4-Mini ReAct agent.
    O4Mini,
    /// FCFS + EASY backfilling (ablation).
    Easy,
    /// Random eligible pick (ablation floor).
    Random,
}

impl SchedulerKind {
    /// The paper's five compared schedulers, in figure order.
    pub fn all_paper() -> [SchedulerKind; 5] {
        [
            SchedulerKind::Fcfs,
            SchedulerKind::Sjf,
            SchedulerKind::OrTools,
            SchedulerKind::Claude37,
            SchedulerKind::O4Mini,
        ]
    }

    /// The two LLM agents (overhead figures).
    pub fn llm_pair() -> [SchedulerKind; 2] {
        [SchedulerKind::Claude37, SchedulerKind::O4Mini]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::Sjf => "SJF",
            SchedulerKind::OrTools => "OR-Tools",
            SchedulerKind::Claude37 => "Claude-3.7",
            SchedulerKind::O4Mini => "O4-Mini",
            SchedulerKind::Easy => "EASY",
            SchedulerKind::Random => "Random",
        }
    }
}

/// LLM overhead numbers extracted from a run (paper §3.7).
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadSummary {
    /// Total elapsed scheduling time (sum of call latencies), seconds.
    pub total_elapsed_secs: f64,
    /// Number of LLM calls.
    pub call_count: usize,
    /// Latencies of accepted placement calls, seconds.
    pub placement_latencies: Vec<f64>,
}

/// One cell's outcome.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheduler display name.
    pub scheduler: String,
    /// The eight §3.2 metrics.
    pub report: MetricsReport,
    /// Simulator counters.
    pub stats: SimStats,
    /// LLM overhead, for the agent schedulers.
    pub overhead: Option<OverheadSummary>,
}

/// Generate the jobs for a scenario instance (dynamic arrivals, as in the
/// paper's §3.1 evaluation).
pub fn scenario_jobs(scenario: ScenarioKind, n: usize, seed: u64) -> Vec<JobSpec> {
    generate(scenario, n, ArrivalMode::Dynamic, seed).jobs
}

/// Run one scheduler over one workload.
///
/// `policy_seed` feeds the stochastic schedulers (LLM sampling noise,
/// random policy, solver restarts); deterministic baselines ignore it.
pub fn run_policy(
    kind: SchedulerKind,
    jobs: &[JobSpec],
    cluster: ClusterConfig,
    policy_seed: u64,
    solver: &SolverConfig,
) -> RunResult {
    let options = SimOptions::default();
    let (outcome, overhead) = match kind {
        SchedulerKind::Fcfs => (run(jobs, cluster, &mut Fcfs, &options), None),
        SchedulerKind::Sjf => (run(jobs, cluster, &mut Sjf, &options), None),
        SchedulerKind::Easy => (run(jobs, cluster, &mut EasyBackfill::new(), &options), None),
        SchedulerKind::Random => (
            run(jobs, cluster, &mut RandomPolicy::new(policy_seed), &options),
            None,
        ),
        SchedulerKind::OrTools => {
            let config = SolverConfig {
                seed: policy_seed,
                ..*solver
            };
            let mut policy = OrToolsPolicy::with_config(jobs, config);
            (run(jobs, cluster, &mut policy, &options), None)
        }
        SchedulerKind::Claude37 | SchedulerKind::O4Mini => {
            let mut policy = match kind {
                SchedulerKind::Claude37 => LlmSchedulingPolicy::claude37(policy_seed),
                _ => LlmSchedulingPolicy::o4mini(policy_seed),
            };
            let outcome = run(jobs, cluster, &mut policy, &options);
            let tracker = policy.overhead();
            let overhead = OverheadSummary {
                total_elapsed_secs: tracker.total_elapsed_secs(),
                call_count: tracker.call_count(),
                placement_latencies: tracker.placement_latencies(),
            };
            (outcome, Some(overhead))
        }
    };
    RunResult {
        scheduler: kind.name().to_string(),
        report: MetricsReport::compute(&outcome.records, cluster),
        stats: outcome.stats,
        overhead,
    }
}

fn run(
    jobs: &[JobSpec],
    cluster: ClusterConfig,
    policy: &mut dyn SchedulingPolicy,
    options: &SimOptions,
) -> SimOutcome {
    run_simulation(cluster, jobs, policy, options).unwrap_or_else(|e| {
        panic!(
            "simulation failed under {}: {e} (jobs={})",
            policy.name(),
            jobs.len()
        )
    })
}

/// A cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Scheduler to run.
    pub kind: SchedulerKind,
    /// The workload.
    pub jobs: Vec<JobSpec>,
    /// Machine configuration.
    pub cluster: ClusterConfig,
    /// Policy seed.
    pub policy_seed: u64,
    /// Solver budget for OR-Tools cells.
    pub solver: SolverConfig,
}

/// Run many cells in parallel on the work-stealing pool, preserving input
/// order.
pub fn run_matrix(cells: Vec<MatrixCell>, pool: &ThreadPool) -> Vec<RunResult> {
    pool.par_map(cells, |cell| {
        run_policy(
            cell.kind,
            &cell.jobs,
            cell.cluster,
            cell.policy_seed,
            &cell.solver,
        )
    })
}

/// Normalize a set of results against the named baseline (FCFS in every
/// paper figure), returning `(scheduler, normalized)` rows in input order.
pub fn normalize_table(results: &[RunResult], baseline: &str) -> Vec<(String, NormalizedReport)> {
    let base = results
        .iter()
        .find(|r| r.scheduler == baseline)
        .unwrap_or_else(|| panic!("baseline `{baseline}` missing from results"))
        .report;
    results
        .iter()
        .map(|r| (r.scheduler.clone(), normalize_against(&r.report, &base)))
        .collect()
}

/// Derive the per-cell policy seed for run `rep` of `kind` from a root
/// seed — stable across machines and runs.
pub fn policy_seed(root: u64, kind: SchedulerKind, rep: u64) -> u64 {
    SeedTree::new(root).derive(kind.name(), rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_metrics::Metric;

    fn quick_solver() -> SolverConfig {
        SolverConfig {
            sa_iterations_per_task: 40,
            sa_iteration_cap: 800,
            exact_max_tasks: 6,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn every_scheduler_completes_a_small_scenario() {
        let jobs = scenario_jobs(ScenarioKind::HeterogeneousMix, 10, 1);
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::Sjf,
            SchedulerKind::OrTools,
            SchedulerKind::Claude37,
            SchedulerKind::O4Mini,
            SchedulerKind::Easy,
            SchedulerKind::Random,
        ] {
            let r = run_policy(
                kind,
                &jobs,
                ClusterConfig::paper_default(),
                7,
                &quick_solver(),
            );
            assert!(r.report.makespan_secs > 0.0, "{}", kind.name());
            assert_eq!(
                r.overhead.is_some(),
                matches!(kind, SchedulerKind::Claude37 | SchedulerKind::O4Mini),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn matrix_runs_in_parallel_and_preserves_order() {
        let pool = ThreadPool::new(4);
        let jobs = scenario_jobs(ScenarioKind::ResourceSparse, 10, 2);
        let cells: Vec<MatrixCell> = SchedulerKind::all_paper()
            .into_iter()
            .map(|kind| MatrixCell {
                kind,
                jobs: jobs.clone(),
                cluster: ClusterConfig::paper_default(),
                policy_seed: 3,
                solver: quick_solver(),
            })
            .collect();
        let results = run_matrix(cells, &pool);
        let names: Vec<&str> = results.iter().map(|r| r.scheduler.as_str()).collect();
        assert_eq!(
            names,
            vec!["FCFS", "SJF", "OR-Tools", "Claude-3.7", "O4-Mini"]
        );
    }

    #[test]
    fn normalization_against_fcfs() {
        let jobs = scenario_jobs(ScenarioKind::HomogeneousShort, 10, 3);
        let results: Vec<RunResult> = [SchedulerKind::Fcfs, SchedulerKind::Sjf]
            .into_iter()
            .map(|k| run_policy(k, &jobs, ClusterConfig::paper_default(), 1, &quick_solver()))
            .collect();
        let table = normalize_table(&results, "FCFS");
        let (name, fcfs_row) = &table[0];
        assert_eq!(name, "FCFS");
        for (_, v) in fcfs_row.defined() {
            assert!((v - 1.0).abs() < 1e-9, "baseline must normalize to 1.0");
        }
        // Makespan ratio for SJF is defined (FCFS makespan > 0).
        assert!(table[1].1.get(Metric::Makespan).is_some());
    }

    #[test]
    fn policy_seeds_are_stable_and_distinct() {
        let a = policy_seed(2025, SchedulerKind::Claude37, 0);
        assert_eq!(a, policy_seed(2025, SchedulerKind::Claude37, 0));
        assert_ne!(a, policy_seed(2025, SchedulerKind::Claude37, 1));
        assert_ne!(a, policy_seed(2025, SchedulerKind::O4Mini, 0));
    }

    #[test]
    #[should_panic(expected = "baseline `FCFS` missing")]
    fn missing_baseline_panics() {
        let jobs = scenario_jobs(ScenarioKind::ResourceSparse, 8, 1);
        let results = vec![run_policy(
            SchedulerKind::Sjf,
            &jobs,
            ClusterConfig::paper_default(),
            1,
            &quick_solver(),
        )];
        let _ = normalize_table(&results, "FCFS");
    }
}
