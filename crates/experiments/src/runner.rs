//! Running one (scheduler, workload) cell and fanning out the matrix.
//!
//! Schedulers are addressed by **registry name** (see
//! [`rsched_registry::names`]): every cell is a registry lookup plus one
//! [`Simulation`] run, so third-party policies registered into a
//! [`PolicyRegistry`] flow through the same harness as the builtins.

use rsched_cluster::{ClusterConfig, JobSpec};
use rsched_metrics::{normalize_against, MetricsReport, NormalizedReport};
use rsched_parallel::ThreadPool;
use rsched_registry::{builtins, PolicyContext, PolicyRegistry, RegistryError};
use rsched_sim::{SimOptions, SimStats, Simulation};
use rsched_simkit::rng::SeedTree;
use rsched_workloads::{scenario_builtins, ArrivalMode, ScenarioContext, WorkloadError};

pub use rsched_cpsolver::SolverConfig;

// The pre-registry, enum-addressed shims stay importable from their old
// paths.
#[allow(deprecated)]
pub use crate::compat::{policy_seed, run_policy, scenario_jobs, SchedulerKind};

/// LLM overhead numbers extracted from a run (paper §3.7) — re-exported
/// from the policy trait's uniform [`overhead_report`] hook.
///
/// [`overhead_report`]: rsched_sim::SchedulingPolicy::overhead_report
pub type OverheadSummary = rsched_sim::OverheadReport;

/// One cell's outcome.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The registry display name the cell was addressed by — stable for
    /// baseline lookups and artifacts even when the policy's own `name()`
    /// differs.
    pub scheduler: String,
    /// Free-form workload label (scenario slug, queue size, …) carried
    /// through from [`MatrixCell::scenario`]; empty for ad-hoc runs.
    pub scenario: String,
    /// The eight §3.2 metrics.
    pub report: MetricsReport,
    /// Simulator counters.
    pub stats: SimStats,
    /// LLM overhead, for the agent schedulers.
    pub overhead: Option<OverheadSummary>,
}

/// Generate the jobs for a named scenario instance (dynamic arrivals, as
/// in the paper's §3.1 evaluation). Resolves through the shared
/// [`ScenarioRegistry`](rsched_workloads::ScenarioRegistry) builtins, so
/// `swf:<path>` trace names work here too.
pub fn scenario_jobs_named(name: &str, n: usize, seed: u64) -> Result<Vec<JobSpec>, WorkloadError> {
    let ctx = ScenarioContext::new(n)
        .with_mode(ArrivalMode::Dynamic)
        .with_seed(seed);
    Ok(scenario_builtins().generate(name, &ctx)?.jobs)
}

/// Run the named scheduler from `registry` over one workload.
///
/// `policy_seed` feeds the stochastic schedulers (LLM sampling noise,
/// random policy, solver restarts); deterministic baselines ignore it.
/// Fails only on an unknown name; a simulation failure panics, as a
/// registered policy that cannot finish a workload is a harness bug.
pub fn run_with_registry(
    registry: &PolicyRegistry,
    scheduler: &str,
    jobs: &[JobSpec],
    cluster: ClusterConfig,
    policy_seed: u64,
    solver: &SolverConfig,
) -> Result<RunResult, RegistryError> {
    let ctx = PolicyContext::new(jobs, cluster)
        .with_seed(policy_seed)
        .with_solver(*solver);
    let mut policy = registry.build(scheduler, &ctx)?;
    let display = registry
        .display_name(scheduler)
        .expect("build succeeded, so the name resolves")
        .to_string();
    let outcome = Simulation::new(cluster)
        .jobs(jobs)
        .options(SimOptions::default())
        .run(policy.as_mut())
        .unwrap_or_else(|e| {
            panic!(
                "simulation failed under {}: {e} (jobs={})",
                policy.name(),
                jobs.len()
            )
        });
    Ok(RunResult {
        scheduler: display,
        scenario: String::new(),
        report: MetricsReport::compute(&outcome.records, cluster),
        stats: outcome.stats,
        overhead: policy.overhead_report(),
    })
}

/// [`run_with_registry`] against the shared builtin registry.
pub fn run_named(
    scheduler: &str,
    jobs: &[JobSpec],
    cluster: ClusterConfig,
    policy_seed: u64,
    solver: &SolverConfig,
) -> Result<RunResult, RegistryError> {
    run_with_registry(builtins(), scheduler, jobs, cluster, policy_seed, solver)
}

/// A cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Registry name of the scheduler to run.
    pub scheduler: String,
    /// Free-form workload label propagated into [`RunResult::scenario`]
    /// (and from there into the per-cell JSON artifacts).
    pub scenario: String,
    /// The workload.
    pub jobs: Vec<JobSpec>,
    /// Machine configuration.
    pub cluster: ClusterConfig,
    /// Policy seed.
    pub policy_seed: u64,
    /// Solver budget for solver-backed cells.
    pub solver: SolverConfig,
}

impl MatrixCell {
    /// Build a cell by **scenario name**: jobs come from the shared
    /// scenario registry (dynamic arrivals, seeded with `workload_seed`),
    /// and the cell label is `"<scenario>/<n>"`. Accepts any registered
    /// name or an `swf:<path>` trace reference.
    pub fn from_scenario(
        scheduler: &str,
        scenario: &str,
        n: usize,
        workload_seed: u64,
        cluster: ClusterConfig,
        policy_seed: u64,
        solver: SolverConfig,
    ) -> Result<MatrixCell, WorkloadError> {
        Ok(MatrixCell {
            scheduler: scheduler.to_string(),
            scenario: format!("{scenario}/{n}"),
            jobs: scenario_jobs_named(scenario, n, workload_seed)?,
            cluster,
            policy_seed,
            solver,
        })
    }
}

/// Run many cells in parallel on the work-stealing pool, preserving input
/// order. Cells resolve against the shared builtin registry.
pub fn run_matrix(cells: Vec<MatrixCell>, pool: &ThreadPool) -> Vec<RunResult> {
    pool.par_map(cells, |cell| {
        let mut result = run_with_registry(
            builtins(),
            &cell.scheduler,
            &cell.jobs,
            cell.cluster,
            cell.policy_seed,
            &cell.solver,
        )
        .unwrap_or_else(|e| panic!("matrix cell failed: {e}"));
        result.scenario = cell.scenario;
        result
    })
}

/// Normalize a set of results against the named baseline (FCFS in every
/// paper figure), returning `(scheduler, normalized)` rows in input order.
pub fn normalize_table(results: &[RunResult], baseline: &str) -> Vec<(String, NormalizedReport)> {
    let base = results
        .iter()
        .find(|r| r.scheduler == baseline)
        .unwrap_or_else(|| panic!("baseline `{baseline}` missing from results"))
        .report;
    results
        .iter()
        .map(|r| (r.scheduler.clone(), normalize_against(&r.report, &base)))
        .collect()
}

/// Derive the per-cell policy seed for run `rep` of the named scheduler
/// from a root seed — stable across machines and runs.
pub fn policy_seed_named(root: u64, scheduler: &str, rep: u64) -> u64 {
    SeedTree::new(root).derive(scheduler, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_metrics::Metric;
    use rsched_registry::names;
    use rsched_sim::{Action, SchedulingPolicy, SystemView};
    use rsched_workloads::names as scenario_names;

    fn jobs_for(scenario: &str, n: usize, seed: u64) -> Vec<JobSpec> {
        scenario_jobs_named(scenario, n, seed).expect("builtin scenario")
    }

    fn quick_solver() -> SolverConfig {
        SolverConfig {
            sa_iterations_per_task: 40,
            sa_iteration_cap: 800,
            exact_max_tasks: 6,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn every_builtin_name_completes_a_small_scenario() {
        let jobs = jobs_for(scenario_names::HETEROGENEOUS_MIX, 10, 1);
        for name in names::ALL_BUILTIN {
            let r = run_named(
                name,
                &jobs,
                ClusterConfig::paper_default(),
                7,
                &quick_solver(),
            )
            .expect("builtin");
            assert!(r.report.makespan_secs > 0.0, "{name}");
            assert_eq!(
                r.overhead.is_some(),
                names::LLM_PAIR.contains(&name),
                "{name}"
            );
        }
    }

    #[test]
    fn unknown_scheduler_name_errors_without_panicking() {
        let jobs = jobs_for(scenario_names::RESOURCE_SPARSE, 8, 1);
        let err = run_named(
            "pbs-pro",
            &jobs,
            ClusterConfig::paper_default(),
            1,
            &quick_solver(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn custom_registry_flows_through_the_harness() {
        struct NarrowestFirst;
        impl SchedulingPolicy for NarrowestFirst {
            fn name(&self) -> &str {
                // Deliberately differs from the registry name: results must
                // be labeled by the name the cell was addressed with.
                "NarrowestFirst v2"
            }
            fn decide(&mut self, view: &SystemView<'_>) -> Action {
                if view.all_jobs_started() {
                    return Action::Stop;
                }
                match view.eligible_now().min_by_key(|j| j.nodes) {
                    Some(j) => Action::StartJob(j.id),
                    None => Action::Delay,
                }
            }
        }
        let mut registry = PolicyRegistry::with_builtins();
        registry
            .register("narrowest-first", |_| Box::new(NarrowestFirst))
            .expect("fresh name");
        let jobs = jobs_for(scenario_names::HETEROGENEOUS_MIX, 10, 2);
        let r = run_with_registry(
            &registry,
            "narrowest-first",
            &jobs,
            ClusterConfig::paper_default(),
            1,
            &quick_solver(),
        )
        .expect("registered");
        assert_eq!(r.scheduler, "narrowest-first");
        assert!(r.overhead.is_none());
    }

    #[test]
    fn matrix_runs_in_parallel_and_preserves_order() {
        let pool = ThreadPool::new(4);
        let jobs = jobs_for(scenario_names::RESOURCE_SPARSE, 10, 2);
        let cells: Vec<MatrixCell> = names::PAPER_SET
            .into_iter()
            .map(|name| MatrixCell {
                scheduler: name.to_string(),
                scenario: "resource-sparse".to_string(),
                jobs: jobs.clone(),
                cluster: ClusterConfig::paper_default(),
                policy_seed: 3,
                solver: quick_solver(),
            })
            .collect();
        let results = run_matrix(cells, &pool);
        let names_out: Vec<&str> = results.iter().map(|r| r.scheduler.as_str()).collect();
        assert_eq!(
            names_out,
            vec!["FCFS", "SJF", "OR-Tools", "Claude-3.7", "O4-Mini"]
        );
        assert!(results.iter().all(|r| r.scenario == "resource-sparse"));
    }

    #[test]
    fn normalization_against_fcfs() {
        let jobs = jobs_for(scenario_names::HOMOGENEOUS_SHORT, 10, 3);
        let results: Vec<RunResult> = [names::FCFS, names::SJF]
            .into_iter()
            .map(|name| {
                run_named(
                    name,
                    &jobs,
                    ClusterConfig::paper_default(),
                    1,
                    &quick_solver(),
                )
                .expect("builtin")
            })
            .collect();
        let table = normalize_table(&results, "FCFS");
        let (name, fcfs_row) = &table[0];
        assert_eq!(name, "FCFS");
        for (_, v) in fcfs_row.defined() {
            assert!((v - 1.0).abs() < 1e-9, "baseline must normalize to 1.0");
        }
        // Makespan ratio for SJF is defined (FCFS makespan > 0).
        assert!(table[1].1.get(Metric::Makespan).is_some());
    }

    #[test]
    fn policy_seeds_are_stable_and_distinct() {
        let a = policy_seed_named(2025, names::CLAUDE37, 0);
        assert_ne!(a, policy_seed_named(2025, names::CLAUDE37, 1));
        assert_ne!(a, policy_seed_named(2025, names::O4_MINI, 0));
    }

    #[test]
    #[should_panic(expected = "baseline `FCFS` missing")]
    fn missing_baseline_panics() {
        let jobs = jobs_for(scenario_names::RESOURCE_SPARSE, 8, 1);
        let results = vec![run_named(
            names::SJF,
            &jobs,
            ClusterConfig::paper_default(),
            1,
            &quick_solver(),
        )
        .expect("builtin")];
        let _ = normalize_table(&results, "FCFS");
    }
}
