//! Machine-readable per-cell JSON artifacts.
//!
//! Every figure run can dump its raw (pre-normalization) cells —
//! scheduler, scenario label, the eight §3.2 metrics, simulator counters,
//! and the LLM overhead ledger — as one JSON document per figure under
//! `results/cells/`. Fixed key order and fixed-precision floats keep the
//! files byte-diffable across commits, so the perf/quality trajectory of
//! the harness is visible in plain `git diff`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rsched_metrics::Metric;
// The byte-stability contract (escape rules + six-decimal floats) is
// shared with the campaign summary writer via `rsched_simkit::json`.
use rsched_simkit::json::{escape, num};
use rsched_simkit::stats::quantile;

use crate::runner::RunResult;

fn metric_key(metric: Metric) -> String {
    metric.name().replace(' ', "_").to_lowercase()
}

fn cell_to_json(figure: &str, result: &RunResult) -> String {
    let mut s = String::with_capacity(512);
    s.push_str(&format!(
        "{{\"figure\":\"{}\",\"scheduler\":\"{}\",\"scenario\":\"{}\",",
        escape(figure),
        escape(&result.scheduler),
        escape(&result.scenario)
    ));
    s.push_str("\"metrics\":{");
    let metrics: Vec<String> = Metric::all()
        .into_iter()
        .map(|m| format!("\"{}\":{}", metric_key(m), num(result.report.get(m))))
        .collect();
    s.push_str(&metrics.join(","));
    s.push_str("},\"stats\":{");
    s.push_str(&format!(
        "\"queries\":{},\"placements\":{},\"backfills\":{},\"delays\":{},\
         \"rejections\":{},\"epochs\":{}",
        result.stats.queries,
        result.stats.placements,
        result.stats.backfills,
        result.stats.delays,
        result.stats.rejections,
        result.stats.epochs
    ));
    s.push_str("},\"overhead\":");
    match &result.overhead {
        None => s.push_str("null"),
        Some(o) => {
            let lat = &o.placement_latencies;
            let mean = if lat.is_empty() {
                "null".to_string()
            } else {
                num(lat.iter().sum::<f64>() / lat.len() as f64)
            };
            let q = |p: f64| quantile(lat, p).map(num).unwrap_or_else(|| "null".into());
            s.push_str(&format!(
                "{{\"call_count\":{},\"total_elapsed_secs\":{},\"latency_mean_s\":{},\
                 \"latency_p50_s\":{},\"latency_p95_s\":{}}}",
                o.call_count,
                num(o.total_elapsed_secs),
                mean,
                q(0.5),
                q(0.95)
            ));
        }
    }
    s.push('}');
    s
}

/// Serialize one figure's raw cells as a JSON array (one object per cell,
/// one line per cell for readable diffs).
pub fn cells_to_json(figure: &str, runs: &[RunResult]) -> String {
    let mut s = String::from("[\n");
    let body: Vec<String> = runs
        .iter()
        .map(|r| format!("  {}", cell_to_json(figure, r)))
        .collect();
    s.push_str(&body.join(",\n"));
    s.push_str("\n]\n");
    s
}

/// Write `<dir>/<figure>.json` and return its path.
pub fn write_cells_json(dir: &Path, figure: &str, runs: &[RunResult]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{figure}.json"));
    fs::write(&path, cells_to_json(figure, runs))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::OverheadSummary;
    use rsched_metrics::MetricsReport;
    use rsched_sim::SimStats;

    fn result(overhead: Option<OverheadSummary>) -> RunResult {
        RunResult {
            scheduler: "Claude-3.7".to_string(),
            scenario: "long-job-dominant/60".to_string(),
            report: MetricsReport {
                makespan_secs: 120.5,
                avg_wait_secs: 10.0,
                avg_turnaround_secs: 55.25,
                throughput: 0.5,
                node_utilization: 0.75,
                memory_utilization: 0.5,
                wait_fairness: 0.9,
                user_fairness: 0.8,
            },
            stats: SimStats {
                queries: 70,
                placements: 60,
                backfills: 5,
                delays: 9,
                rejections: 1,
                epochs: 64,
            },
            overhead,
        }
    }

    /// Minimal structural validation: balanced braces/brackets outside
    /// strings and no trailing garbage.
    fn assert_balanced(text: &str) {
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in text.chars() {
            if in_string {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {text}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {text}");
        assert!(!in_string);
    }

    #[test]
    fn cells_json_contains_all_sections() {
        let text = cells_to_json(
            "fig3",
            &[result(Some(OverheadSummary {
                total_elapsed_secs: 900.0,
                call_count: 61,
                placement_latencies: vec![10.0, 20.0, 30.0],
            }))],
        );
        assert_balanced(&text);
        for key in [
            "\"figure\":\"fig3\"",
            "\"scheduler\":\"Claude-3.7\"",
            "\"scenario\":\"long-job-dominant/60\"",
            "\"makespan\":120.500000",
            "\"user_fairness\":0.800000",
            "\"queries\":70",
            "\"epochs\":64",
            "\"call_count\":61",
            "\"latency_mean_s\":20.000000",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn missing_overhead_serializes_as_null() {
        let text = cells_to_json("fig8", &[result(None)]);
        assert_balanced(&text);
        assert!(text.contains("\"overhead\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = result(None);
        r.scenario = "weird \"label\"\nwith\tcontrol".to_string();
        let text = cells_to_json("x", &[r]);
        assert_balanced(&text);
        assert!(text.contains("weird \\\"label\\\"\\nwith\\tcontrol"));
    }

    #[test]
    fn write_creates_directory_and_file() {
        let dir = std::env::temp_dir().join("rsched_artifact_test");
        let _ = fs::remove_dir_all(&dir);
        let path = write_cells_json(&dir, "fig3", &[result(None)]).expect("writes");
        assert!(path.ends_with("fig3.json"));
        let text = fs::read_to_string(&path).expect("readable");
        assert_balanced(&text);
        let _ = fs::remove_dir_all(&dir);
    }
}
