//! CSV export of figure data, for plotting outside the terminal.
//!
//! Each figure's `render()` prints the paper-style table; these helpers
//! dump the same data as machine-readable CSV (written under `results/` by
//! the `all_figures` binary).

use rsched_metrics::{Metric, NormalizedReport};
use rsched_simkit::csv;

use crate::runner::OverheadSummary;

/// Serialize `(label…, normalized report)` rows to CSV. `label_headers`
/// names the leading label columns (e.g. `["scenario", "scheduler"]`).
pub fn normalized_rows_to_csv(
    label_headers: &[&str],
    rows: &[(Vec<String>, NormalizedReport)],
) -> String {
    let mut table: Vec<Vec<String>> = Vec::with_capacity(rows.len() + 1);
    let mut header: Vec<String> = label_headers.iter().map(|s| s.to_string()).collect();
    header.extend(
        Metric::all()
            .iter()
            .map(|m| m.name().replace(' ', "_").to_lowercase()),
    );
    table.push(header);
    for (labels, report) in rows {
        let mut row = labels.clone();
        row.extend(Metric::all().iter().map(|&m| match report.get(m) {
            Some(v) => format!("{v:.6}"),
            None => String::new(),
        }));
        table.push(row);
    }
    csv::write_rows(table)
}

/// Serialize overhead cells (`(label…, overhead)`) to CSV with latency
/// summary columns.
pub fn overhead_rows_to_csv(
    label_headers: &[&str],
    rows: &[(Vec<String>, OverheadSummary)],
) -> String {
    let mut table: Vec<Vec<String>> = Vec::with_capacity(rows.len() + 1);
    let mut header: Vec<String> = label_headers.iter().map(|s| s.to_string()).collect();
    header.extend(
        [
            "calls",
            "elapsed_s",
            "latency_mean_s",
            "latency_p50_s",
            "latency_p95_s",
            "latency_max_s",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    table.push(header);
    for (labels, overhead) in rows {
        let lat = &overhead.placement_latencies;
        let mean = if lat.is_empty() {
            String::new()
        } else {
            format!("{:.3}", lat.iter().sum::<f64>() / lat.len() as f64)
        };
        let q = |p: f64| -> String {
            rsched_simkit::stats::quantile(lat, p)
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default()
        };
        let max = lat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut row = labels.clone();
        row.extend([
            overhead.call_count.to_string(),
            format!("{:.3}", overhead.total_elapsed_secs),
            mean,
            q(0.5),
            q(0.95),
            if lat.is_empty() {
                String::new()
            } else {
                format!("{max:.3}")
            },
        ]);
        table.push(row);
    }
    csv::write_rows(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_metrics::normalize_against;
    use rsched_metrics::MetricsReport;
    use rsched_simkit::csv::Table;

    fn report() -> MetricsReport {
        MetricsReport {
            makespan_secs: 100.0,
            avg_wait_secs: 10.0,
            avg_turnaround_secs: 50.0,
            throughput: 0.5,
            node_utilization: 0.7,
            memory_utilization: 0.6,
            wait_fairness: 0.9,
            user_fairness: 0.8,
        }
    }

    #[test]
    fn normalized_csv_has_header_and_ratio_columns() {
        let base = report();
        let rows = vec![(
            vec!["Long-Job Dominant".to_string(), "SJF".to_string()],
            normalize_against(&base, &base),
        )];
        let text = normalized_rows_to_csv(&["scenario", "scheduler"], &rows);
        let table = Table::parse(&text).expect("valid CSV");
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.get(0, "scenario"), Some("Long-Job Dominant"));
        assert_eq!(table.get(0, "makespan"), Some("1.000000"));
        assert_eq!(table.get(0, "user_fairness"), Some("1.000000"));
    }

    #[test]
    fn omitted_metrics_serialize_as_empty_cells() {
        let mut zero_wait = report();
        zero_wait.avg_wait_secs = 0.0;
        let rows = vec![(
            vec!["X".to_string()],
            normalize_against(&zero_wait, &zero_wait),
        )];
        let text = normalized_rows_to_csv(&["scheduler"], &rows);
        let table = Table::parse(&text).expect("valid CSV");
        assert_eq!(table.get(0, "avg_wait"), Some(""));
        assert_eq!(table.get(0, "makespan"), Some("1.000000"));
    }

    #[test]
    fn overhead_csv_summarizes_latencies() {
        let rows = vec![(
            vec!["60".to_string(), "O4-Mini".to_string()],
            OverheadSummary {
                total_elapsed_secs: 1500.0,
                call_count: 61,
                placement_latencies: vec![10.0, 20.0, 30.0],
            },
        )];
        let text = overhead_rows_to_csv(&["jobs", "model"], &rows);
        let table = Table::parse(&text).expect("valid CSV");
        assert_eq!(table.get(0, "calls"), Some("61"));
        assert_eq!(table.get(0, "latency_mean_s"), Some("20.000"));
        assert_eq!(table.get(0, "latency_max_s"), Some("30.000"));
    }

    #[test]
    fn empty_latencies_leave_blank_cells() {
        let rows = vec![(
            vec!["x".to_string()],
            OverheadSummary {
                total_elapsed_secs: 0.0,
                call_count: 0,
                placement_latencies: vec![],
            },
        )];
        let text = overhead_rows_to_csv(&["label"], &rows);
        let table = Table::parse(&text).expect("valid CSV");
        assert_eq!(table.get(0, "latency_mean_s"), Some(""));
    }
}
