//! Campaign analysis: per-`(scenario, jobs)` Pareto fronts over the
//! seed-averaged objective vectors, rendered as a byte-stable
//! `summary.json` and a `fronts.csv`.
//!
//! Objectives live on wildly different scales (seconds vs fractions), so
//! each group is min–max normalized per objective — 0 is the group's
//! best value, 1 its worst — before dominance ranking, and hypervolume
//! is measured against the reference point `1.1` in every normalized
//! coordinate. That makes hypervolume comparable across scenarios and
//! job counts: a policy alone at the ideal point scores `1.1^d`.
//!
//! Determinism: all inputs are canonical six-decimal values (see
//! [`crate::cell::canon`]), aggregation walks the spec axes in spec
//! order, and floats render through one fixed-precision formatter — so a
//! cache-warm rerun and a fresh run emit **byte-identical** files.

use rsched_metrics::pareto::{dominates, hypervolume, pareto_ranks};
use rsched_metrics::Metric;
// The byte-stability contract (escape rules + six-decimal floats) is
// shared with the per-cell artifact writer via `rsched_simkit::json`.
use rsched_simkit::json::{escape, num};

use crate::cell::{canon, CellResult};
use crate::spec::CampaignSpec;

/// The normalized-space reference point coordinate for hypervolume.
pub const REFERENCE: f64 = 1.1;

/// One policy's row in a group's Pareto table.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Policy registry name.
    pub policy: String,
    /// Non-dominated rank: 0 = on the Pareto front. `usize::MAX` (JSON
    /// `null`) if any objective is NaN.
    pub rank: usize,
    /// This policy's own hypervolume against the reference point.
    pub hypervolume: f64,
    /// Seed-averaged raw objective values, in objective order.
    pub objectives: Vec<f64>,
    /// Min–max normalized, minimization-oriented coordinates in `[0, 1]`.
    pub normalized: Vec<f64>,
    /// Policies in this group that strictly dominate this one (empty on
    /// the front), in spec order.
    pub dominated_by: Vec<String>,
}

/// The Pareto analysis of one `(scenario, jobs)` grid group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupFront {
    /// Scenario name.
    pub scenario: String,
    /// Queue size.
    pub jobs: usize,
    /// Hypervolume of the group's Pareto front.
    pub front_hypervolume: f64,
    /// One row per participating policy, in spec order.
    pub rows: Vec<PolicyRow>,
}

impl GroupFront {
    /// The policies on the Pareto front (rank 0), in spec order.
    pub fn front(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.rank == 0)
            .map(|r| r.policy.as_str())
            .collect()
    }
}

/// The full campaign analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Campaign name.
    pub campaign: String,
    /// The analyzed objectives, in order.
    pub objectives: Vec<Metric>,
    /// Grid axes, as specified.
    pub policies: Vec<String>,
    /// Scenario axis.
    pub scenarios: Vec<String>,
    /// Queue-size axis.
    pub jobs: Vec<usize>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Total cells in the grid.
    pub cells: usize,
    /// One front per `(scenario, jobs)` group, scenario-major.
    pub fronts: Vec<GroupFront>,
}

impl CampaignSummary {
    /// Analyze a completed grid (results in any order; cells are matched
    /// by coordinates).
    pub fn compute(spec: &CampaignSpec, results: &[CellResult]) -> CampaignSummary {
        let mut fronts = Vec::new();
        for scenario in &spec.scenarios {
            for &jobs in &spec.jobs {
                let policies: Vec<&String> = spec
                    .policies
                    .iter()
                    .filter(|p| !spec.is_excluded(p, jobs))
                    .collect();
                if policies.is_empty() {
                    continue;
                }
                fronts.push(group_front(spec, results, scenario, jobs, &policies));
            }
        }
        CampaignSummary {
            campaign: spec.name.clone(),
            objectives: spec.objectives.clone(),
            policies: spec.policies.clone(),
            scenarios: spec.scenarios.clone(),
            jobs: spec.jobs.clone(),
            seeds: spec.seeds.clone(),
            cells: results.len(),
            fronts,
        }
    }

    /// Render the byte-stable `summary.json` (fixed key order, one line
    /// per policy row, six-decimal floats).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str(&format!(
            "{{\n  \"campaign\": \"{}\",\n",
            escape(&self.campaign)
        ));
        s.push_str(&format!(
            "  \"objectives\": [{}],\n",
            join(self.objectives.iter().map(|m| quote(m.key())))
        ));
        s.push_str(&format!(
            "  \"policies\": [{}],\n",
            join(self.policies.iter().map(|p| quote(p)))
        ));
        s.push_str(&format!(
            "  \"scenarios\": [{}],\n",
            join(self.scenarios.iter().map(|p| quote(p)))
        ));
        s.push_str(&format!(
            "  \"jobs\": [{}],\n",
            join(self.jobs.iter().map(usize::to_string))
        ));
        s.push_str(&format!(
            "  \"seeds\": [{}],\n",
            join(self.seeds.iter().map(u64::to_string))
        ));
        s.push_str(&format!("  \"cells\": {},\n", self.cells));
        s.push_str(&format!("  \"reference\": {},\n", num(REFERENCE)));
        s.push_str("  \"fronts\": [\n");
        for (g, group) in self.fronts.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"jobs\": {}, \"front_hypervolume\": {}, \"policies\": [\n",
                escape(&group.scenario),
                group.jobs,
                num(group.front_hypervolume)
            ));
            for (i, row) in group.rows.iter().enumerate() {
                let rank = if row.rank == usize::MAX {
                    "null".to_string()
                } else {
                    row.rank.to_string()
                };
                let objectives = join(
                    self.objectives
                        .iter()
                        .zip(&row.objectives)
                        .map(|(m, &v)| format!("\"{}\":{}", m.key(), num(v))),
                );
                s.push_str(&format!(
                    "      {{\"policy\":\"{}\",\"rank\":{rank},\"hypervolume\":{},\
                     \"objectives\":{{{objectives}}},\"normalized\":[{}],\"dominated_by\":[{}]}}{}\n",
                    escape(&row.policy),
                    num(row.hypervolume),
                    join(row.normalized.iter().map(|&v| num(v))),
                    join(row.dominated_by.iter().map(|p| quote(p))),
                    comma(i, group.rows.len()),
                ));
            }
            s.push_str(&format!("    ]}}{}\n", comma(g, self.fronts.len())));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Render the front table as CSV: one row per `(scenario, jobs,
    /// policy)` with rank, hypervolumes, and the raw + normalized
    /// objective values.
    pub fn fronts_csv(&self) -> String {
        let mut header = vec![
            "scenario".to_string(),
            "jobs".to_string(),
            "policy".to_string(),
            "rank".to_string(),
            "hypervolume".to_string(),
            "front_hypervolume".to_string(),
        ];
        for m in &self.objectives {
            header.push(m.key().to_string());
        }
        for m in &self.objectives {
            header.push(format!("norm_{}", m.key()));
        }
        let mut rows = vec![header];
        for group in &self.fronts {
            for row in &group.rows {
                let mut out = vec![
                    group.scenario.clone(),
                    group.jobs.to_string(),
                    row.policy.clone(),
                    if row.rank == usize::MAX {
                        String::new()
                    } else {
                        row.rank.to_string()
                    },
                    num(row.hypervolume),
                    num(group.front_hypervolume),
                ];
                out.extend(row.objectives.iter().map(|&v| num(v)));
                out.extend(row.normalized.iter().map(|&v| num(v)));
                rows.push(out);
            }
        }
        rsched_simkit::csv::write_rows(rows)
    }
}

fn group_front(
    spec: &CampaignSpec,
    results: &[CellResult],
    scenario: &str,
    jobs: usize,
    policies: &[&String],
) -> GroupFront {
    let dim = spec.objectives.len();
    // Seed-averaged raw objective vectors, one per policy, spec order.
    let raw: Vec<Vec<f64>> = policies
        .iter()
        .map(|policy| {
            let cells: Vec<&CellResult> = results
                .iter()
                .filter(|r| {
                    r.cell.policy == **policy && r.cell.scenario == scenario && r.cell.jobs == jobs
                })
                .collect();
            assert!(
                !cells.is_empty(),
                "grid incomplete: no cells for {policy} × {scenario}/{jobs}"
            );
            spec.objectives
                .iter()
                .map(|&m| {
                    canon(cells.iter().map(|c| c.metric(m)).sum::<f64>() / cells.len() as f64)
                })
                .collect()
        })
        .collect();
    // Orient for minimization, then min–max normalize per objective.
    let oriented: Vec<Vec<f64>> = raw
        .iter()
        .map(|v| {
            v.iter()
                .zip(&spec.objectives)
                .map(|(&x, m)| if m.higher_is_better() { -x } else { x })
                .collect()
        })
        .collect();
    let normalized: Vec<Vec<f64>> = {
        let mut out = vec![vec![0.0; dim]; oriented.len()];
        for j in 0..dim {
            let column: Vec<f64> = oriented.iter().map(|v| v[j]).collect();
            let finite: Vec<f64> = column.iter().copied().filter(|v| v.is_finite()).collect();
            let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
            let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let range = max - min;
            for (i, &v) in column.iter().enumerate() {
                out[i][j] = if !v.is_finite() {
                    f64::NAN
                } else if range > 0.0 {
                    canon((v - min) / range)
                } else {
                    0.0
                };
            }
        }
        out
    };
    let ranks = pareto_ranks(&normalized);
    let reference = vec![REFERENCE; dim];
    let front_points: Vec<Vec<f64>> = normalized
        .iter()
        .zip(&ranks)
        .filter(|(_, &rank)| rank == 0)
        .map(|(p, _)| p.clone())
        .collect();
    let front_hypervolume = canon(hypervolume(&front_points, &reference));
    let rows: Vec<PolicyRow> = policies
        .iter()
        .enumerate()
        .map(|(i, policy)| PolicyRow {
            policy: (*policy).clone(),
            rank: ranks[i],
            hypervolume: canon(hypervolume(
                std::slice::from_ref(&normalized[i]),
                &reference,
            )),
            objectives: raw[i].clone(),
            normalized: normalized[i].clone(),
            dominated_by: policies
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i && dominates(&normalized[j], &normalized[i]))
                .map(|(_, p)| (*p).clone())
                .collect(),
        })
        .collect();
    GroupFront {
        scenario: scenario.to_string(),
        jobs,
        front_hypervolume,
        rows,
    }
}

fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(", ")
}

fn comma(index: usize, len: usize) -> &'static str {
    if index + 1 == len {
        ""
    } else {
        ","
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellSpec;
    use crate::spec::CampaignSpec;

    fn spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"
name = "summary-test"
policies = ["A", "B", "C"]
scenarios = ["s1"]
jobs = [10]
seeds = [1, 2]
objectives = ["avg_wait", "node_util"]
"#,
        )
        .expect("parses")
    }

    /// One cell with the given wait and utilization (other metrics zero).
    fn cell(policy: &str, seed: u64, wait: f64, util: f64) -> CellResult {
        let mut metrics = [0.0; 8];
        metrics[1] = canon(wait); // avg_wait slot in Metric::all order
        metrics[4] = canon(util); // node_util slot
        CellResult {
            cell: CellSpec {
                policy: policy.to_string(),
                scenario: "s1".to_string(),
                jobs: 10,
                seed,
            },
            metrics,
            placements: 10,
            epochs: 10,
        }
    }

    fn results() -> Vec<CellResult> {
        vec![
            // A: wait 10, util 0.9 — best wait, best util → dominates all.
            cell("A", 1, 10.0, 0.9),
            cell("A", 2, 10.0, 0.9),
            // B: wait 20, util 0.5 — dominated by A.
            cell("B", 1, 20.0, 0.5),
            cell("B", 2, 20.0, 0.5),
            // C: wait 30, util 0.7 — dominated by A, not by B (util).
            cell("C", 1, 30.0, 0.7),
            cell("C", 2, 30.0, 0.7),
        ]
    }

    #[test]
    fn fronts_rank_and_attribute_domination() {
        let summary = CampaignSummary::compute(&spec(), &results());
        assert_eq!(summary.fronts.len(), 1);
        let group = &summary.fronts[0];
        assert_eq!(group.front(), vec!["A"]);
        let ranks: Vec<usize> = group.rows.iter().map(|r| r.rank).collect();
        assert_eq!(ranks, vec![0, 1, 1], "B and C are both rank 1");
        assert_eq!(group.rows[1].dominated_by, vec!["A"]);
        assert_eq!(group.rows[2].dominated_by, vec!["A"]);
        // A at the ideal corner: normalized (0, 0) → HV = 1.1².
        assert!((group.rows[0].hypervolume - 1.21).abs() < 1e-9);
        assert!((group.front_hypervolume - 1.21).abs() < 1e-9);
        // Raw objective means survive unoriented.
        assert!((group.rows[2].objectives[0] - 30.0).abs() < 1e-9);
        assert!((group.rows[2].objectives[1] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn seed_averaging_uses_all_replications() {
        let mut r = results();
        // Shift B's second seed so the mean moves.
        r[3] = cell("B", 2, 40.0, 0.5);
        let summary = CampaignSummary::compute(&spec(), &r);
        let b = &summary.fronts[0].rows[1];
        assert!((b.objectives[0] - 30.0).abs() < 1e-9, "mean of 20 and 40");
    }

    #[test]
    fn json_is_structured_and_stable() {
        let summary = CampaignSummary::compute(&spec(), &results());
        let json = summary.to_json();
        assert_eq!(json, summary.to_json(), "pure function");
        for needle in [
            "\"campaign\": \"summary-test\"",
            "\"objectives\": [\"avg_wait\", \"node_util\"]",
            "\"cells\": 6",
            "\"reference\": 1.100000",
            "\"front_hypervolume\": 1.210000",
            "\"policy\":\"A\",\"rank\":0",
            "\"dominated_by\":[\"A\"]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces outside strings.
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced JSON:\n{json}");
    }

    #[test]
    fn csv_has_one_row_per_policy_and_group() {
        let summary = CampaignSummary::compute(&spec(), &results());
        let csv = summary.fronts_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 policies:\n{csv}");
        assert!(lines[0].starts_with("scenario,jobs,policy,rank,hypervolume,front_hypervolume"));
        assert!(lines[0].contains("norm_avg_wait"));
        assert!(lines[1].starts_with("s1,10,A,0,"));
    }

    #[test]
    fn identical_policies_all_share_the_front() {
        let r = vec![
            cell("A", 1, 10.0, 0.5),
            cell("A", 2, 10.0, 0.5),
            cell("B", 1, 10.0, 0.5),
            cell("B", 2, 10.0, 0.5),
            cell("C", 1, 10.0, 0.5),
            cell("C", 2, 10.0, 0.5),
        ];
        let summary = CampaignSummary::compute(&spec(), &r);
        let group = &summary.fronts[0];
        assert_eq!(group.front().len(), 3, "degenerate ranges tie at 0");
        assert!(group.rows.iter().all(|row| row.dominated_by.is_empty()));
    }
}
