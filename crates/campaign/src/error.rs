//! The campaign error type: spec parsing, validation, and I/O failures,
//! all carrying enough location context to fix the offending line.

use std::fmt;

/// Why a campaign could not be parsed, validated, or executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The spec text failed to parse.
    Parse {
        /// Where (`line N`, possibly prefixed with the file path).
        location: String,
        /// What went wrong.
        message: String,
    },
    /// The spec parsed but names a policy, scenario, objective, or
    /// exclusion that does not resolve.
    Validation(String),
    /// Reading the spec or writing campaign artifacts failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Parse { location, message } => {
                write!(f, "campaign spec parse error at {location}: {message}")
            }
            CampaignError::Validation(message) => {
                write!(f, "campaign spec validation error: {message}")
            }
            CampaignError::Io { path, message } => {
                write!(f, "campaign I/O error on {path}: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_location() {
        let e = CampaignError::Parse {
            location: "grid.toml: line 3".to_string(),
            message: "bad value".to_string(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = CampaignError::Validation("unknown policy `pbs`".to_string());
        assert!(e.to_string().contains("pbs"));
        let e = CampaignError::Io {
            path: "/x".to_string(),
            message: "denied".to_string(),
        };
        assert!(e.to_string().contains("/x"));
    }
}
