//! One grid cell: `(policy, scenario, jobs, seed)`, its content hash,
//! and its canonical result.
//!
//! Cells are **content-addressed**: the hash folds in every input that
//! can change the cell's outcome (the four grid coordinates, the solver
//! budget, the cluster) plus a workspace-version salt and a cache format
//! version — so editing a spec, bumping the workspace, or changing the
//! cache layout each invalidate exactly the cells they affect, and
//! nothing else.

use rsched_cluster::ClusterConfig;
use rsched_cpsolver::SolverConfig;
use rsched_metrics::{Metric, MetricsReport};
use rsched_simkit::rng::SeedTree;

/// Bumped whenever the cached-cell layout changes incompatibly.
pub const CACHE_FORMAT: u32 = 1;

/// One `(policy, scenario, jobs, seed)` coordinate of the campaign grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Policy registry name.
    pub policy: String,
    /// Scenario registry name (or `swf:<path>`).
    pub scenario: String,
    /// Queue size.
    pub jobs: usize,
    /// Replication seed.
    pub seed: u64,
}

impl CellSpec {
    /// The workload generator seed: the replication seed itself, so every
    /// policy at a given `(scenario, jobs, seed)` faces the identical
    /// workload.
    pub fn workload_seed(&self) -> u64 {
        self.seed
    }

    /// The stochastic-policy seed, derived per policy from the
    /// replication seed so policies never share RNG streams.
    pub fn policy_seed(&self) -> u64 {
        SeedTree::new(self.seed).derive(&self.policy, 0)
    }

    /// Content hash of this cell under the given execution environment
    /// (solver budget + cluster + walltime skew), salted with the
    /// workspace version and [`CACHE_FORMAT`].
    ///
    /// Classed topology and a non-unit walltime skew are folded in as
    /// *conditional* trailing segments: a flat cluster with exact
    /// estimates hashes exactly as it did before either knob existed, so
    /// no previously cached flat-grid cell is invalidated.
    pub fn content_hash(&self, solver: &SolverConfig, cluster: ClusterConfig, skew: f64) -> u64 {
        use std::fmt::Write as _;
        let mut canonical = format!(
            "rsched-campaign|fmt{CACHE_FORMAT}|ws{}|{}|{}|{}|{}|solver:{},{},{},{},{}|cluster:{},{}",
            env!("CARGO_PKG_VERSION"),
            self.policy.to_lowercase(),
            self.scenario.to_lowercase(),
            self.jobs,
            self.seed,
            solver.exact_max_tasks,
            solver.bnb_node_budget,
            solver.sa_iterations_per_task,
            solver.sa_iteration_cap,
            solver.use_genetic,
            cluster.nodes,
            cluster.memory_gb,
        );
        if !cluster.topology.is_flat() {
            canonical.push_str("|topology:");
            for (_, spec) in cluster.topology.classes() {
                let c = spec.capacity;
                let _ = write!(
                    canonical,
                    "{}x{:?}({},{},{},{});",
                    spec.count, spec.class, c.cpus, c.gpus, c.memory_gb, c.bb_slots
                );
            }
        }
        if skew != 1.0 {
            let _ = write!(canonical, "|skew:{}", crate::toml::fmt_float(skew));
        }
        fnv1a64(canonical.as_bytes())
    }

    /// A short human-readable label: `policy × scenario/jobs seed=N`.
    pub fn label(&self) -> String {
        format!(
            "{} × {}/{} seed={}",
            self.policy, self.scenario, self.jobs, self.seed
        )
    }

    /// The cache file name for this cell: readable coordinates plus the
    /// content hash, so a `ls` of the cells directory doubles as a grid
    /// manifest.
    pub fn file_name(&self, hash: u64) -> String {
        format!(
            "{}__{}__j{}__s{}__{hash:016x}.toml",
            sanitize(&self.policy),
            sanitize(&self.scenario),
            self.jobs,
            self.seed
        )
    }
}

/// FNV-1a, 64-bit — stable across platforms and versions, unlike
/// `DefaultHasher`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fold a name into a file-system-safe slug (`swf:a/b.swf` →
/// `swf-a-b.swf`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Round to the canonical six-decimal precision every campaign artifact
/// uses. All aggregation and Pareto analysis runs on canonical values, so
/// a cell computed fresh and a cell read back from its cache file are
/// **bit-identical** — the root of the byte-identical `summary.json`
/// guarantee. Non-finite values pass through unchanged.
pub fn canon(v: f64) -> f64 {
    if v.is_finite() {
        crate::toml::fmt_float(v).parse().expect("fixed-precision")
    } else {
        v
    }
}

/// The canonical outcome of one executed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell this result belongs to.
    pub cell: CellSpec,
    /// The eight §3.2 metrics in [`Metric::all`] order, canonically
    /// rounded.
    pub metrics: [f64; 8],
    /// Jobs placed (equals `jobs` for completing runs).
    pub placements: u64,
    /// Decision epochs the simulator ran.
    pub epochs: u64,
}

impl CellResult {
    /// Canonicalize a freshly computed report into a cell result.
    pub fn new(cell: CellSpec, report: &MetricsReport, placements: u64, epochs: u64) -> Self {
        let mut metrics = [0.0; 8];
        for (slot, m) in metrics.iter_mut().zip(Metric::all()) {
            *slot = canon(report.get(m));
        }
        CellResult {
            cell,
            metrics,
            placements,
            epochs,
        }
    }

    /// The canonical value of one metric.
    pub fn metric(&self, metric: Metric) -> f64 {
        let index = Metric::all()
            .iter()
            .position(|&m| m == metric)
            .expect("Metric::all covers every variant");
        self.metrics[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellSpec {
        CellSpec {
            policy: "FCFS".to_string(),
            scenario: "heterogeneous_mix".to_string(),
            jobs: 60,
            seed: 2025,
        }
    }

    #[test]
    fn hash_is_stable_and_sensitive_to_every_input() {
        let solver = SolverConfig::default();
        let cluster = ClusterConfig::paper_default();
        let base = cell().content_hash(&solver, cluster, 1.0);
        assert_eq!(
            base,
            cell().content_hash(&solver, cluster, 1.0),
            "deterministic"
        );

        let mut c = cell();
        c.policy = "SJF".to_string();
        assert_ne!(base, c.content_hash(&solver, cluster, 1.0));
        let mut c = cell();
        c.scenario = "long_tail".to_string();
        assert_ne!(base, c.content_hash(&solver, cluster, 1.0));
        let mut c = cell();
        c.jobs = 61;
        assert_ne!(base, c.content_hash(&solver, cluster, 1.0));
        let mut c = cell();
        c.seed = 2026;
        assert_ne!(base, c.content_hash(&solver, cluster, 1.0));

        let mut other_solver = solver;
        other_solver.sa_iteration_cap += 1;
        assert_ne!(base, cell().content_hash(&other_solver, cluster, 1.0));
        assert_ne!(
            base,
            cell().content_hash(&solver, ClusterConfig::new(64, 512), 1.0)
        );
        assert_ne!(
            base,
            cell().content_hash(&solver, ClusterConfig::mixed_256(), 1.0),
            "topology reaches the hash even at equal node/memory totals"
        );
        assert_ne!(base, cell().content_hash(&solver, cluster, 1.5));
        assert_ne!(
            cell().content_hash(&solver, cluster, 1.5),
            cell().content_hash(&solver, cluster, 2.0)
        );
    }

    #[test]
    fn hash_is_case_insensitive_like_the_registries() {
        let solver = SolverConfig::default();
        let cluster = ClusterConfig::paper_default();
        let mut c = cell();
        c.policy = "fcfs".to_string();
        assert_eq!(
            cell().content_hash(&solver, cluster, 1.0),
            c.content_hash(&solver, cluster, 1.0)
        );
    }

    #[test]
    fn flat_exact_estimate_hash_is_pinned_across_the_knob_additions() {
        // The pre-refactor canonical string, rebuilt by hand: a flat
        // cluster with skew 1.0 must hash to the FNV of exactly this
        // string, or every cached flat-grid cell is orphaned.
        let solver = SolverConfig::default();
        let cluster = ClusterConfig::paper_default();
        let legacy = format!(
            "rsched-campaign|fmt{CACHE_FORMAT}|ws{}|fcfs|heterogeneous_mix|60|2025|solver:{},{},{},{},{}|cluster:{},{}",
            env!("CARGO_PKG_VERSION"),
            solver.exact_max_tasks,
            solver.bnb_node_budget,
            solver.sa_iterations_per_task,
            solver.sa_iteration_cap,
            solver.use_genetic,
            cluster.nodes,
            cluster.memory_gb,
        );
        assert_eq!(
            cell().content_hash(&solver, cluster, 1.0),
            fnv1a64(legacy.as_bytes())
        );
    }

    #[test]
    fn seeds_derive_per_policy() {
        let a = cell();
        let mut b = cell();
        b.policy = "Random".to_string();
        assert_eq!(a.workload_seed(), b.workload_seed(), "same workload");
        assert_ne!(a.policy_seed(), b.policy_seed(), "distinct policy noise");
    }

    #[test]
    fn file_name_is_readable_and_safe() {
        let name = cell().file_name(0xabc);
        assert_eq!(
            name,
            "FCFS__heterogeneous_mix__j60__s2025__0000000000000abc.toml"
        );
        let mut c = cell();
        c.scenario = "swf:fixtures/sample.swf".to_string();
        let name = c.file_name(1);
        assert!(!name.contains('/'), "{name}");
        assert!(!name.contains(':'), "{name}");
    }

    #[test]
    fn canon_is_idempotent() {
        let v = 123.456_789_123_f64;
        let once = canon(v);
        assert_eq!(once, canon(once));
        assert_ne!(v, once, "rounded");
        assert!(canon(f64::NAN).is_nan());
    }

    #[test]
    fn result_metrics_follow_metric_all_order() {
        use rsched_cluster::{JobRecord, JobSpec};
        use rsched_simkit::{SimDuration, SimTime};
        let records = vec![JobRecord::new(
            JobSpec::new(1, 0, SimTime::ZERO, SimDuration::from_secs(100), 4, 32),
            SimTime::from_secs(7),
        )];
        let report = MetricsReport::compute(&records, ClusterConfig::new(8, 64));
        let result = CellResult::new(cell(), &report, 1, 3);
        assert_eq!(result.metric(Metric::Makespan), canon(report.makespan_secs));
        assert_eq!(
            result.metric(Metric::UserFairness),
            canon(report.user_fairness)
        );
        assert_eq!(result.placements, 1);
        assert_eq!(result.epochs, 3);
    }
}
