//! Streaming observation of a running campaign — the campaign-scale
//! analogue of `rsched_sim::SimObserver`.
//!
//! A [`CampaignObserver`] receives callbacks *while* the engine executes:
//! once at launch (with the grid size and cache-hit count), once per
//! cached cell, once per freshly computed cell **as it completes** on the
//! worker pool, and once at the end. All callbacks run on the engine's
//! coordinating thread, so observers need no synchronization.

use crate::cell::{CellResult, CellSpec};

/// Callbacks streamed from a campaign run.
///
/// All methods default to no-ops; implement only the hooks you need. The
/// engine guarantees:
///
/// * [`on_start`](CampaignObserver::on_start) fires exactly once, after
///   validation, before any cell callback;
/// * [`on_cell_cached`](CampaignObserver::on_cell_cached) fires once per
///   cache hit, in grid order, before any
///   [`on_cell_complete`](CampaignObserver::on_cell_complete);
/// * [`on_cell_complete`](CampaignObserver::on_cell_complete) fires once
///   per freshly executed cell, in **completion** order (the pool is
///   concurrent; merge order is restored afterwards);
/// * [`on_complete`](CampaignObserver::on_complete) fires exactly once,
///   after the last cell, for runs that finish without error.
pub trait CampaignObserver {
    /// The grid is validated and sized: `total` cells, of which `cached`
    /// will be served from the cell cache.
    fn on_start(&mut self, total: usize, cached: usize) {
        let _ = (total, cached);
    }

    /// A cell was served from the cache.
    fn on_cell_cached(&mut self, cell: &CellSpec, result: &CellResult) {
        let _ = (cell, result);
    }

    /// A cell finished executing on the pool. `done` counts every settled
    /// cell so far (cached + completed) out of `total`.
    fn on_cell_complete(
        &mut self,
        cell: &CellSpec,
        result: &CellResult,
        done: usize,
        total: usize,
    ) {
        let _ = (cell, result, done, total);
    }

    /// The campaign finished; `results` is the full grid in grid order.
    fn on_complete(&mut self, results: &[CellResult]) {
        let _ = results;
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {}

/// Counts every callback — the cheapest way to smoke-test campaign
/// plumbing and to assert cache behavior in tests.
#[derive(Debug, Clone, Default)]
pub struct CountingCampaignObserver {
    /// `on_start` invocations (must end at exactly 1).
    pub starts: usize,
    /// Total cells announced at start.
    pub announced_total: usize,
    /// Cached cells announced at start.
    pub announced_cached: usize,
    /// Cells served from the cache.
    pub cached: usize,
    /// Cells freshly executed.
    pub ran: usize,
    /// Labels of the freshly executed cells, in completion order.
    pub ran_labels: Vec<String>,
    /// `on_complete` invocations (must end at exactly 1).
    pub completions: usize,
}

impl CountingCampaignObserver {
    /// A fresh observer with all counters at zero.
    pub fn new() -> Self {
        CountingCampaignObserver::default()
    }
}

impl CampaignObserver for CountingCampaignObserver {
    fn on_start(&mut self, total: usize, cached: usize) {
        self.starts += 1;
        self.announced_total = total;
        self.announced_cached = cached;
    }

    fn on_cell_cached(&mut self, _cell: &CellSpec, _result: &CellResult) {
        self.cached += 1;
    }

    fn on_cell_complete(
        &mut self,
        cell: &CellSpec,
        _result: &CellResult,
        _done: usize,
        _total: usize,
    ) {
        self.ran += 1;
        self.ran_labels.push(cell.label());
    }

    fn on_complete(&mut self, _results: &[CellResult]) {
        self.completions += 1;
    }
}

/// Streams one line per settled cell to a sink — live progress for long
/// sweeps.
pub struct ProgressCampaignObserver<W: std::io::Write> {
    sink: W,
    total: usize,
    done: usize,
}

impl<W: std::io::Write> ProgressCampaignObserver<W> {
    /// Report to `sink`.
    pub fn new(sink: W) -> Self {
        ProgressCampaignObserver {
            sink,
            total: 0,
            done: 0,
        }
    }
}

impl ProgressCampaignObserver<std::io::Stderr> {
    /// Report to standard error.
    pub fn stderr() -> Self {
        ProgressCampaignObserver::new(std::io::stderr())
    }
}

impl<W: std::io::Write> CampaignObserver for ProgressCampaignObserver<W> {
    fn on_start(&mut self, total: usize, cached: usize) {
        self.total = total;
        let _ = writeln!(
            self.sink,
            "campaign: {total} cells ({cached} cached, {} to run)",
            total - cached
        );
    }

    fn on_cell_cached(&mut self, cell: &CellSpec, _result: &CellResult) {
        self.done += 1;
        let _ = writeln!(
            self.sink,
            "[{}/{}] cached {}",
            self.done,
            self.total,
            cell.label()
        );
    }

    fn on_cell_complete(
        &mut self,
        cell: &CellSpec,
        _result: &CellResult,
        done: usize,
        total: usize,
    ) {
        self.done = done;
        let _ = writeln!(self.sink, "[{done}/{total}] ran {}", cell.label());
    }

    fn on_complete(&mut self, results: &[CellResult]) {
        let _ = writeln!(self.sink, "campaign complete: {} cells", results.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellSpec {
        CellSpec {
            policy: "FCFS".to_string(),
            scenario: "long_tail".to_string(),
            jobs: 10,
            seed: 1,
        }
    }

    fn result() -> CellResult {
        CellResult {
            cell: cell(),
            metrics: [0.0; 8],
            placements: 10,
            epochs: 11,
        }
    }

    #[test]
    fn counting_observer_tracks_everything() {
        let mut obs = CountingCampaignObserver::new();
        obs.on_start(4, 1);
        obs.on_cell_cached(&cell(), &result());
        obs.on_cell_complete(&cell(), &result(), 2, 4);
        obs.on_complete(&[result()]);
        assert_eq!(obs.starts, 1);
        assert_eq!(obs.announced_total, 4);
        assert_eq!(obs.announced_cached, 1);
        assert_eq!(obs.cached, 1);
        assert_eq!(obs.ran, 1);
        assert_eq!(obs.ran_labels, vec!["FCFS × long_tail/10 seed=1"]);
        assert_eq!(obs.completions, 1);
    }

    #[test]
    fn progress_observer_writes_one_line_per_cell() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut obs = ProgressCampaignObserver::new(&mut buf);
            obs.on_start(2, 1);
            obs.on_cell_cached(&cell(), &result());
            obs.on_cell_complete(&cell(), &result(), 2, 2);
            obs.on_complete(&[result(), result()]);
        }
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 4, "{text}");
        assert!(text.contains("[1/2] cached FCFS"), "{text}");
        assert!(text.contains("[2/2] ran FCFS"), "{text}");
        assert!(text.contains("campaign complete: 2 cells"), "{text}");
    }
}
