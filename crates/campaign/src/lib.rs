//! # rsched-campaign
//!
//! The **declarative sweep-campaign engine**: a small TOML-subset spec
//! names a grid of policies × scenarios × queue sizes × seeds (both axes
//! resolved through the open registries, so `swf:<path>` traces,
//! `polaris_synth` streams, and third-party registrations work for
//! free), and the engine turns it into a sharded, resumable, analyzed
//! experiment run:
//!
//! * **Spec** ([`CampaignSpec`]) — parsed and validated against the
//!   registries *before any cell runs*; unknown names fail fast.
//! * **Engine** ([`Campaign`]) — cells are content-hashed (grid
//!   coordinates + solver budget + cluster + workspace-version salt) and
//!   executed on the [`rsched_parallel::ThreadPool`]; results persist
//!   under `results/campaigns/<name>/cells/`, so a rerun skips every
//!   already-computed cell and merges deterministically in grid order
//!   regardless of completion order. A [`CampaignObserver`] streams
//!   per-cell progress.
//! * **Analysis** ([`CampaignSummary`]) — per-`(scenario, jobs)` Pareto
//!   fronts over the seed-averaged objective vectors with non-dominated
//!   ranks and hypervolume, written as byte-stable `summary.json` +
//!   `fronts.csv`.
//!
//! ```
//! use rsched_campaign::{Campaign, CampaignSpec, CountingCampaignObserver};
//! use rsched_parallel::ThreadPool;
//!
//! let spec = CampaignSpec::parse(r#"
//! name = "doctest"
//! policies = ["FCFS", "SJF"]
//! scenarios = ["heterogeneous_mix"]
//! jobs = [10]
//! seeds = [1, 2]
//! objectives = ["avg_wait", "node_util"]
//! "#).expect("valid spec");
//!
//! let out = std::env::temp_dir().join("rsched_campaign_doctest");
//! # let _ = std::fs::remove_dir_all(&out);
//! let campaign = Campaign::new(spec).out_root(&out);
//! let pool = ThreadPool::new(2);
//! let mut progress = CountingCampaignObserver::new();
//! let outcome = campaign.run_observed(&pool, &mut progress).expect("runs");
//!
//! assert_eq!(outcome.results.len(), 4); // 2 policies × 2 seeds
//! assert_eq!(progress.ran, 4);
//! let front = &outcome.summary.fronts[0];
//! assert!(!front.front().is_empty(), "somebody is non-dominated");
//!
//! // Rerun: every cell is a cache hit, the summary is byte-identical.
//! let again = campaign.run(&pool).expect("reruns");
//! assert_eq!(again.cached, 4);
//! assert_eq!(again.summary.to_json(), outcome.summary.to_json());
//! # let _ = std::fs::remove_dir_all(&out);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod cell;
pub mod engine;
pub mod error;
pub mod observer;
pub mod spec;
pub mod summary;
pub mod toml;

pub use cell::{canon, CellResult, CellSpec, CACHE_FORMAT};
pub use engine::{run_cell, Campaign, CampaignOutcome};
pub use error::CampaignError;
pub use observer::{
    CampaignObserver, CountingCampaignObserver, NullObserver, ProgressCampaignObserver,
};
pub use spec::CampaignSpec;
pub use summary::{CampaignSummary, GroupFront, PolicyRow};
