//! A hand-rolled parser for the TOML subset campaign specs (and cached
//! cell files) use — the build environment has no crates.io access, so
//! this mirrors the SWF parser's discipline: line-based, every error
//! carries a `line N` location.
//!
//! Supported grammar, deliberately small:
//!
//! * `# comment` lines and blank lines;
//! * `[section]` headers (one level; keys inside are reported as
//!   `section.key`);
//! * `key = value` where value is a `"string"`, an integer, a float, or
//!   a single-line array `[v, v, …]` of strings/integers;
//! * trailing `# comments` after a value.
//!
//! No nested tables, no multi-line values, no datetimes, no booleans
//! beyond `true`/`false` — campaign specs do not need them, and every
//! rejected construct fails loudly with its line number.

use crate::error::CampaignError;

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float (any numeric with `.`, `e`, `nan`, or `inf`).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A homogeneous single-line array.
    List(Vec<TomlValue>),
}

impl TomlValue {
    /// The string payload, if this is a [`TomlValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`TomlValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TomlValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload: floats as-is, integers widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            TomlValue::Float(v) => Some(*v),
            TomlValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`TomlValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The list payload, if this is a [`TomlValue::List`].
    pub fn as_list(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::List(items) => Some(items),
            _ => None,
        }
    }
}

/// A parsed document: `(key, value)` pairs in file order, section keys
/// flattened to `section.key`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    pairs: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// Parse a document.
    pub fn parse(text: &str) -> Result<TomlTable, CampaignError> {
        let mut table = TomlTable::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(line_no, "unterminated [section] header"));
                };
                let name = name.trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(err(line_no, format!("bad section name `{name}`")));
                }
                section = name.to_string();
                continue;
            }
            let Some((key, rest)) = line.split_once('=') else {
                return Err(err(
                    line_no,
                    "expected `key = value`, `[section]`, or a comment",
                ));
            };
            let key = key.trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(err(line_no, format!("bad key `{key}`")));
            }
            let value = parse_value(rest.trim(), line_no)?;
            let full_key = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            if table.pairs.iter().any(|(k, _)| *k == full_key) {
                return Err(err(line_no, format!("duplicate key `{full_key}`")));
            }
            table.pairs.push((full_key, value));
        }
        Ok(table)
    }

    /// The value stored under `key` (`section.key` for sectioned keys).
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Every `(key, value)` pair, in file order.
    pub fn pairs(&self) -> &[(String, TomlValue)] {
        &self.pairs
    }

    /// Keys present in the document, in file order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(k, _)| k.as_str())
    }
}

fn err(line_no: usize, message: impl Into<String>) -> CampaignError {
    CampaignError::Parse {
        location: format!("line {line_no}"),
        message: message.into(),
    }
}

/// Split a raw value off from a trailing `# comment`. Respects quotes, so
/// `"#1"` survives.
fn strip_trailing_comment(raw: &str) -> &str {
    let mut in_string = false;
    for (i, c) in raw.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return raw[..i].trim_end(),
            _ => {}
        }
    }
    raw
}

fn parse_value(raw: &str, line_no: usize) -> Result<TomlValue, CampaignError> {
    let raw = strip_trailing_comment(raw).trim();
    if raw.is_empty() {
        return Err(err(line_no, "missing value"));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err(err(line_no, "unterminated array (arrays are single-line)"));
        };
        let mut items = Vec::new();
        for element in split_array_elements(body, line_no)? {
            let value = parse_scalar(&element, line_no)?;
            if matches!(value, TomlValue::List(_)) {
                return Err(err(line_no, "nested arrays are not supported"));
            }
            items.push(value);
        }
        return Ok(TomlValue::List(items));
    }
    parse_scalar(raw, line_no)
}

/// Split an array body on commas outside quotes.
fn split_array_elements(body: &str, line_no: usize) -> Result<Vec<String>, CampaignError> {
    let mut elements = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                elements.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if in_string {
        return Err(err(line_no, "unterminated string in array"));
    }
    let last = current.trim();
    if !last.is_empty() {
        elements.push(last.to_string());
    }
    if elements.iter().any(|e| e.is_empty()) {
        return Err(err(line_no, "empty array element"));
    }
    Ok(elements)
}

fn parse_scalar(raw: &str, line_no: usize) -> Result<TomlValue, CampaignError> {
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(err(line_no, format!("unterminated string `{raw}`")));
        };
        if body.contains('"') {
            return Err(err(line_no, "strings may not contain embedded quotes"));
        }
        return Ok(TomlValue::Str(body.to_string()));
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(v) = raw.parse::<i64>() {
        return Ok(TomlValue::Int(v));
    }
    if let Ok(v) = raw.parse::<f64>() {
        return Ok(TomlValue::Float(v));
    }
    Err(err(
        line_no,
        format!("`{raw}` is not a string, number, boolean, or array"),
    ))
}

/// Render a float in the canonical six-decimal cache/summary spelling.
/// Non-finite values (impossible for our metrics, but never emit an
/// unparsable file) render as `nan`/`inf`/`-inf`, which
/// [`TomlTable::parse`] reads back.
pub fn fmt_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else if v.is_nan() {
        "nan".to_string()
    } else if v > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
# A campaign.
name = "paper_grid"   # trailing comment
jobs = [60, 1000]
policies = ["FCFS", "SJF"]
scale = 2.5
quick = false

[solver]
sa_iteration_cap = 50
"#;

    #[test]
    fn parses_scalars_arrays_and_sections() {
        let t = TomlTable::parse(DOC).expect("parses");
        assert_eq!(t.get("name").unwrap().as_str(), Some("paper_grid"));
        assert_eq!(
            t.get("jobs").unwrap().as_list().unwrap(),
            &[TomlValue::Int(60), TomlValue::Int(1000)]
        );
        assert_eq!(
            t.get("policies").unwrap().as_list().unwrap()[1].as_str(),
            Some("SJF")
        );
        assert_eq!(t.get("scale").unwrap().as_float(), Some(2.5));
        assert_eq!(t.get("quick").unwrap().as_bool(), Some(false));
        assert_eq!(t.get("solver.sa_iteration_cap").unwrap().as_int(), Some(50));
        assert!(t.get("sa_iteration_cap").is_none(), "sectioned key only");
    }

    #[test]
    fn hash_inside_a_string_is_not_a_comment() {
        let t = TomlTable::parse("label = \"#1 grid\"").expect("parses");
        assert_eq!(t.get("label").unwrap().as_str(), Some("#1 grid"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, needle) in [
            ("name 3", "expected `key = value`"),
            ("x = ", "missing value"),
            ("x = \"unterminated", "unterminated string"),
            ("x = [1, 2", "unterminated array"),
            ("x = [1, [2]]", "is not a string, number"),
            ("x = what", "not a string, number"),
            ("[bad section", "unterminated [section]"),
            ("x = 1\nx = 2", "duplicate key `x`"),
            ("x = [1, , 2]", "empty array element"),
        ] {
            match TomlTable::parse(text) {
                Err(CampaignError::Parse { location, message }) => {
                    assert!(location.starts_with("line "), "{text}: {location}");
                    assert!(message.contains(needle), "{text}: {message}");
                }
                other => panic!("{text}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_keys_in_different_sections_are_distinct() {
        let t = TomlTable::parse("[a]\nx = 1\n[b]\nx = 2").expect("parses");
        assert_eq!(t.get("a.x").unwrap().as_int(), Some(1));
        assert_eq!(t.get("b.x").unwrap().as_int(), Some(2));
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.0, 1.5, 123.456789, -7.25, 1e-7] {
            let text = format!("x = {}", fmt_float(v));
            let parsed = TomlTable::parse(&text)
                .expect("parses")
                .get("x")
                .unwrap()
                .as_float()
                .unwrap();
            // fmt_float is the canonical rounding, so one round trip is
            // idempotent: re-rendering the parsed value reproduces the text.
            assert_eq!(fmt_float(parsed), fmt_float(v));
        }
        assert_eq!(fmt_float(f64::NAN), "nan");
        let t = TomlTable::parse("x = nan\ny = inf\nz = -inf").expect("parses");
        assert!(t.get("x").unwrap().as_float().unwrap().is_nan());
        assert_eq!(t.get("y").unwrap().as_float(), Some(f64::INFINITY));
        assert_eq!(t.get("z").unwrap().as_float(), Some(f64::NEG_INFINITY));
    }
}
