//! The on-disk cell-result cache.
//!
//! Every executed cell is persisted as one small TOML-subset file under
//! `<campaign>/cells/`, named by its grid coordinates and content hash.
//! A rerun reads the file back instead of re-simulating; any mismatch —
//! unparsable text, wrong format version, wrong hash, coordinates that
//! disagree with the expected cell — quietly degrades to a cache miss,
//! so a corrupted file costs exactly one re-run, never a wrong result.

use std::path::{Path, PathBuf};

use rsched_metrics::Metric;

use crate::cell::{CellResult, CellSpec, CACHE_FORMAT};
use crate::error::CampaignError;
use crate::toml::{fmt_float, TomlTable};

/// The cache file path for `cell` under `cells_dir`.
pub fn cell_path(cells_dir: &Path, cell: &CellSpec, hash: u64) -> PathBuf {
    cells_dir.join(cell.file_name(hash))
}

/// Serialize one result in the canonical cache layout.
pub fn render_cell(result: &CellResult, hash: u64) -> String {
    let mut s = String::with_capacity(512);
    s.push_str("# rsched-campaign cached cell — delete to force a re-run.\n");
    s.push_str(&format!("format = {CACHE_FORMAT}\n"));
    s.push_str(&format!("hash = \"{hash:016x}\"\n"));
    s.push_str(&format!("policy = \"{}\"\n", result.cell.policy));
    s.push_str(&format!("scenario = \"{}\"\n", result.cell.scenario));
    s.push_str(&format!("jobs = {}\n", result.cell.jobs));
    s.push_str(&format!("seed = {}\n", result.cell.seed));
    for (m, v) in Metric::all().into_iter().zip(result.metrics) {
        s.push_str(&format!("{} = {}\n", m.key(), fmt_float(v)));
    }
    s.push_str(&format!("placements = {}\n", result.placements));
    s.push_str(&format!("epochs = {}\n", result.epochs));
    s
}

/// Write `result` to its cache file, creating `cells_dir` as needed.
pub fn write_cell(
    cells_dir: &Path,
    result: &CellResult,
    hash: u64,
) -> Result<PathBuf, CampaignError> {
    std::fs::create_dir_all(cells_dir).map_err(|e| io_err(cells_dir, e))?;
    let path = cell_path(cells_dir, &result.cell, hash);
    std::fs::write(&path, render_cell(result, hash)).map_err(|e| io_err(&path, e))?;
    Ok(path)
}

/// Try to read the cached result for `cell`. `None` means "miss":
/// absent, unparsable, stale format, or any field disagreeing with the
/// expected cell and hash.
pub fn read_cell(cells_dir: &Path, cell: &CellSpec, hash: u64) -> Option<CellResult> {
    let path = cell_path(cells_dir, cell, hash);
    let text = std::fs::read_to_string(path).ok()?;
    parse_cell(&text, cell, hash)
}

fn parse_cell(text: &str, expected: &CellSpec, expected_hash: u64) -> Option<CellResult> {
    let table = TomlTable::parse(text).ok()?;
    if table.get("format")?.as_int()? != i64::from(CACHE_FORMAT) {
        return None;
    }
    if table.get("hash")?.as_str()? != format!("{expected_hash:016x}") {
        return None;
    }
    if table.get("policy")?.as_str()? != expected.policy
        || table.get("scenario")?.as_str()? != expected.scenario
        || table.get("jobs")?.as_int()? != i64::try_from(expected.jobs).ok()?
        || table.get("seed")?.as_int()? != i64::try_from(expected.seed).ok()?
    {
        return None;
    }
    let mut metrics = [0.0; 8];
    for (slot, m) in metrics.iter_mut().zip(Metric::all()) {
        *slot = table.get(m.key())?.as_float()?;
    }
    Some(CellResult {
        cell: expected.clone(),
        metrics,
        placements: u64::try_from(table.get("placements")?.as_int()?).ok()?,
        epochs: u64::try_from(table.get("epochs")?.as_int()?).ok()?,
    })
}

fn io_err(path: &Path, e: std::io::Error) -> CampaignError {
    CampaignError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::canon;

    fn result() -> CellResult {
        CellResult {
            cell: CellSpec {
                policy: "FCFS".to_string(),
                scenario: "heterogeneous_mix".to_string(),
                jobs: 60,
                seed: 2025,
            },
            metrics: [
                canon(1234.5),
                canon(56.789),
                canon(99.0001),
                canon(0.012345),
                canon(0.75),
                canon(0.5),
                canon(0.9),
                canon(0.8),
            ],
            placements: 60,
            epochs: 123,
        }
    }

    fn tmp(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rsched_campaign_cache_{test}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_bit_identically() {
        let dir = tmp("round_trip");
        let r = result();
        write_cell(&dir, &r, 0xfeed).expect("writes");
        let back = read_cell(&dir, &r.cell, 0xfeed).expect("hit");
        assert_eq!(back, r);
        // And the rendered bytes are stable.
        assert_eq!(render_cell(&back, 0xfeed), render_cell(&r, 0xfeed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_hash_or_cell_is_a_miss() {
        let dir = tmp("wrong_hash");
        let r = result();
        write_cell(&dir, &r, 0xfeed).expect("writes");
        assert!(read_cell(&dir, &r.cell, 0xbeef).is_none(), "hash mismatch");
        let mut other = r.cell.clone();
        other.seed = 1;
        assert!(read_cell(&dir, &other, 0xfeed).is_none(), "absent cell");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_a_miss_not_an_error() {
        let dir = tmp("corruption");
        let r = result();
        let path = write_cell(&dir, &r, 7).expect("writes");
        for garbage in ["", "not toml at all {{{", "format = 99\n"] {
            std::fs::write(&path, garbage).expect("writes");
            assert!(read_cell(&dir, &r.cell, 7).is_none(), "{garbage:?}");
        }
        // A truncated-but-parsable file (missing metrics) is also a miss.
        let full = render_cell(&r, 7);
        let truncated: String = full.lines().take(8).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, truncated).expect("writes");
        assert!(read_cell(&dir, &r.cell, 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_coordinates_are_a_miss() {
        let dir = tmp("tampered");
        let r = result();
        let path = write_cell(&dir, &r, 7).expect("writes");
        let tampered = render_cell(&r, 7).replace("policy = \"FCFS\"", "policy = \"SJF\"");
        std::fs::write(&path, tampered).expect("writes");
        assert!(read_cell(&dir, &r.cell, 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_metrics_survive_the_round_trip() {
        let dir = tmp("non_finite");
        let mut r = result();
        r.metrics[3] = f64::NAN;
        r.metrics[4] = f64::INFINITY;
        write_cell(&dir, &r, 9).expect("writes");
        let back = read_cell(&dir, &r.cell, 9).expect("hit");
        assert!(back.metrics[3].is_nan());
        assert_eq!(back.metrics[4], f64::INFINITY);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
