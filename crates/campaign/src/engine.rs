//! The campaign engine: expand the spec into its grid, serve cells from
//! the content-addressed cache, execute the misses on the work-stealing
//! pool, and merge **in grid order regardless of completion order** — so
//! a campaign's output is a pure function of its spec, not of thread
//! scheduling.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;

use rsched_metrics::MetricsReport;
use rsched_parallel::ThreadPool;
use rsched_registry::{PolicyContext, PolicyRegistry};
use rsched_sim::Simulation;
use rsched_workloads::{ArrivalMode, ScenarioContext, ScenarioRegistry};

use crate::cache::{read_cell, write_cell};
use crate::cell::{CellResult, CellSpec};
use crate::error::CampaignError;
use crate::observer::{CampaignObserver, NullObserver};
use crate::spec::CampaignSpec;
use crate::summary::CampaignSummary;

/// A configured campaign, ready to run.
///
/// Both registries default to the builtins; third-party policies and
/// scenarios flow in through [`Campaign::policies`] /
/// [`Campaign::scenarios`] with zero engine changes. Output lands under
/// `results/campaigns/<name>/` unless [`Campaign::out_root`] redirects
/// it (tests use temp dirs).
pub struct Campaign {
    spec: CampaignSpec,
    out_dir: PathBuf,
    policies: Arc<PolicyRegistry>,
    scenarios: Arc<ScenarioRegistry>,
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Every cell result, in grid order (scenarios × jobs × policies ×
    /// seeds, exclusions skipped).
    pub results: Vec<CellResult>,
    /// Cells served from the cache.
    pub cached: usize,
    /// Cells freshly executed.
    pub ran: usize,
    /// The Pareto analysis of the grid.
    pub summary: CampaignSummary,
    /// Where `summary.json`, `fronts.csv`, and `cells/` were written.
    pub out_dir: PathBuf,
}

impl Campaign {
    /// A campaign over `spec` with builtin registries, writing under
    /// `results/campaigns/<name>/`.
    pub fn new(spec: CampaignSpec) -> Self {
        let out_dir = Path::new("results/campaigns").join(&spec.name);
        Campaign {
            spec,
            out_dir,
            policies: Arc::new(PolicyRegistry::with_builtins()),
            scenarios: Arc::new(ScenarioRegistry::with_builtins()),
        }
    }

    /// Redirect output to `<root>/<name>/` instead of
    /// `results/campaigns/<name>/`.
    pub fn out_root(mut self, root: impl AsRef<Path>) -> Self {
        self.out_dir = root.as_ref().join(&self.spec.name);
        self
    }

    /// Resolve policies against a custom registry.
    pub fn policies(mut self, registry: Arc<PolicyRegistry>) -> Self {
        self.policies = registry;
        self
    }

    /// Resolve scenarios against a custom registry.
    pub fn scenarios(mut self, registry: Arc<ScenarioRegistry>) -> Self {
        self.scenarios = registry;
        self
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The output directory (`<root>/<name>`).
    pub fn out_dir(&self) -> &Path {
        &self.out_dir
    }

    /// The full grid in grid order: scenarios × jobs × policies × seeds,
    /// minus exclusions.
    pub fn grid(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for scenario in &self.spec.scenarios {
            for &jobs in &self.spec.jobs {
                for policy in &self.spec.policies {
                    if self.spec.is_excluded(policy, jobs) {
                        continue;
                    }
                    for &seed in &self.spec.seeds {
                        cells.push(CellSpec {
                            policy: policy.clone(),
                            scenario: scenario.clone(),
                            jobs,
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Run the campaign without progress reporting.
    pub fn run(&self, pool: &ThreadPool) -> Result<CampaignOutcome, CampaignError> {
        self.run_observed(pool, &mut NullObserver)
    }

    /// Run the campaign, streaming progress to `observer`.
    ///
    /// Validates the spec, probes the cache, executes every miss on
    /// `pool`, persists fresh cells, writes `summary.json` and
    /// `fronts.csv`, and returns the merged outcome. A policy or
    /// simulation panic in a worker is re-raised here, mirroring
    /// [`ThreadPool::par_map`].
    pub fn run_observed(
        &self,
        pool: &ThreadPool,
        observer: &mut dyn CampaignObserver,
    ) -> Result<CampaignOutcome, CampaignError> {
        self.spec.validate(&self.policies, &self.scenarios)?;
        let grid = self.grid();
        let cells_dir = self.out_dir.join("cells");
        let solver = self.spec.solver;
        let cluster = self.spec.cluster();
        let skew = self.spec.walltime_skew;

        // Probe the cache in grid order.
        let mut slots: Vec<Option<CellResult>> = Vec::with_capacity(grid.len());
        let mut misses: Vec<(usize, CellSpec, u64)> = Vec::new();
        for (index, cell) in grid.iter().enumerate() {
            let hash = cell.content_hash(&solver, cluster, skew);
            match read_cell(&cells_dir, cell, hash) {
                Some(result) => slots.push(Some(result)),
                None => {
                    slots.push(None);
                    misses.push((index, cell.clone(), hash));
                }
            }
        }
        let total = grid.len();
        let cached = total - misses.len();
        observer.on_start(total, cached);
        for slot in slots.iter().flatten() {
            observer.on_cell_cached(&slot.cell, slot);
        }

        // Execute the misses concurrently; settle results as they stream
        // back. The channel carries the grid index so merge order is
        // independent of completion order.
        type TaskOutcome = (usize, u64, std::thread::Result<CellResult>);
        let (tx, rx) = mpsc::channel::<TaskOutcome>();
        for (index, cell, hash) in misses {
            let tx = tx.clone();
            let policies = Arc::clone(&self.policies);
            let scenarios = Arc::clone(&self.scenarios);
            pool.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_cell(&policies, &scenarios, &cell, solver, cluster, skew)
                }));
                // The receiver bails on the first panic; later sends then
                // fail, which is expected and ignorable.
                let _ = tx.send((index, hash, result));
            });
        }
        drop(tx);
        let mut done = cached;
        for (index, hash, result) in rx {
            match result {
                Ok(result) => {
                    write_cell(&cells_dir, &result, hash)?;
                    done += 1;
                    observer.on_cell_complete(&result.cell, &result, done, total);
                    slots[index] = Some(result);
                }
                Err(payload) => resume_unwind(payload),
            }
        }
        let results: Vec<CellResult> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} never delivered a result")))
            .collect();

        let summary = CampaignSummary::compute(&self.spec, &results);
        std::fs::create_dir_all(&self.out_dir).map_err(|e| CampaignError::Io {
            path: self.out_dir.display().to_string(),
            message: e.to_string(),
        })?;
        for (file, content) in [
            ("summary.json", summary.to_json()),
            ("fronts.csv", summary.fronts_csv()),
        ] {
            let path = self.out_dir.join(file);
            std::fs::write(&path, content).map_err(|e| CampaignError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        }
        observer.on_complete(&results);
        Ok(CampaignOutcome {
            cached,
            ran: total - cached,
            results,
            summary,
            out_dir: self.out_dir.clone(),
        })
    }
}

/// Execute one cell: generate the workload by scenario name, build the
/// policy by registry name, simulate, and canonicalize the metrics.
///
/// # Panics
/// On simulation failure — spec validation already proved the names
/// resolve, so a policy that cannot finish a workload is a harness bug,
/// exactly as in `rsched_experiments::runner`.
pub fn run_cell(
    policies: &PolicyRegistry,
    scenarios: &ScenarioRegistry,
    cell: &CellSpec,
    solver: rsched_cpsolver::SolverConfig,
    cluster: rsched_cluster::ClusterConfig,
    walltime_skew: f64,
) -> CellResult {
    let ctx = ScenarioContext::new(cell.jobs)
        .with_mode(ArrivalMode::Dynamic)
        .with_seed(cell.workload_seed())
        .with_cluster(cluster)
        .with_walltime_skew(walltime_skew);
    let workload = scenarios
        .generate(&cell.scenario, &ctx)
        .unwrap_or_else(|e| panic!("scenario `{}`: {e}", cell.scenario));
    let pctx = PolicyContext::new(&workload.jobs, cluster)
        .with_seed(cell.policy_seed())
        .with_solver(solver);
    let mut policy = policies
        .build(&cell.policy, &pctx)
        .unwrap_or_else(|e| panic!("policy `{}`: {e}", cell.policy));
    let outcome = Simulation::new(cluster)
        .jobs(&workload.jobs)
        .run(policy.as_mut())
        .unwrap_or_else(|e| panic!("cell {} failed: {e}", cell.label()));
    let report = MetricsReport::compute(&outcome.records, cluster);
    CellResult::new(
        cell.clone(),
        &report,
        outcome.stats.placements as u64,
        outcome.stats.epochs as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CountingCampaignObserver;

    fn small_spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"
name = "engine-test"
policies = ["FCFS", "SJF"]
scenarios = ["heterogeneous_mix"]
jobs = [8, 10]
seeds = [1, 2]
exclude = ["SJF/10"]
"#,
        )
        .expect("parses")
    }

    #[test]
    fn grid_order_is_scenario_jobs_policy_seed_minus_exclusions() {
        let campaign = Campaign::new(small_spec());
        let labels: Vec<String> = campaign.grid().iter().map(CellSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "FCFS × heterogeneous_mix/8 seed=1",
                "FCFS × heterogeneous_mix/8 seed=2",
                "SJF × heterogeneous_mix/8 seed=1",
                "SJF × heterogeneous_mix/8 seed=2",
                "FCFS × heterogeneous_mix/10 seed=1",
                "FCFS × heterogeneous_mix/10 seed=2",
            ]
        );
    }

    #[test]
    fn runs_merge_in_grid_order_and_cache_warms() {
        let root = std::env::temp_dir().join(format!(
            "rsched_campaign_engine_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let campaign = Campaign::new(small_spec()).out_root(&root);
        let pool = ThreadPool::new(2);

        let mut cold = CountingCampaignObserver::new();
        let outcome = campaign.run_observed(&pool, &mut cold).expect("runs");
        assert_eq!(outcome.results.len(), 6);
        assert_eq!((outcome.cached, outcome.ran), (0, 6));
        assert_eq!((cold.cached, cold.ran, cold.completions), (0, 6, 1));
        let labels: Vec<String> = outcome.results.iter().map(|r| r.cell.label()).collect();
        assert_eq!(
            labels,
            campaign
                .grid()
                .iter()
                .map(CellSpec::label)
                .collect::<Vec<_>>()
        );
        assert!(outcome.out_dir.join("summary.json").is_file());
        assert!(outcome.out_dir.join("fronts.csv").is_file());

        let mut warm = CountingCampaignObserver::new();
        let rerun = campaign.run_observed(&pool, &mut warm).expect("reruns");
        assert_eq!((rerun.cached, rerun.ran), (6, 0));
        assert_eq!((warm.cached, warm.ran), (6, 0));
        assert_eq!(rerun.results, outcome.results, "cache is transparent");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn validation_failure_runs_nothing() {
        let mut spec = small_spec();
        spec.policies.push("Slurm".to_string());
        let root = std::env::temp_dir().join(format!(
            "rsched_campaign_engine_invalid_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let campaign = Campaign::new(spec).out_root(&root);
        let pool = ThreadPool::new(1);
        let mut obs = CountingCampaignObserver::new();
        let err = campaign.run_observed(&pool, &mut obs).expect_err("invalid");
        assert!(err.to_string().contains("Slurm"));
        assert_eq!(obs.starts, 0, "no callback before validation");
        assert!(!root.exists(), "no artifacts for invalid specs");
    }

    #[test]
    fn run_cell_is_deterministic() {
        let policies = PolicyRegistry::with_builtins();
        let scenarios = ScenarioRegistry::with_builtins();
        let cell = CellSpec {
            policy: "Random".to_string(),
            scenario: "long_tail".to_string(),
            jobs: 12,
            seed: 5,
        };
        let solver = rsched_cpsolver::SolverConfig::default();
        let cluster = rsched_cluster::ClusterConfig::paper_default();
        let a = run_cell(&policies, &scenarios, &cell, solver, cluster, 1.0);
        let b = run_cell(&policies, &scenarios, &cell, solver, cluster, 1.0);
        assert_eq!(a, b);
        assert_eq!(a.placements, 12);
    }

    #[test]
    fn mixed_class_skewed_campaign_runs_the_backfill_family() {
        // The hetero_grid shape in miniature: the four backfill policies
        // on the classed machine with over-requested walltimes, including
        // a scenario whose wide classless jobs must span node classes.
        let spec = CampaignSpec::parse(
            r#"
name = "mixed-smoke"
policies = ["EASY", "EASY-SJBF", "Conservative", "Conservative-SJBF"]
scenarios = ["heterogeneous_mix", "gpu_skewed_hetmix"]
jobs = [16]
seeds = [2025]
walltime_skew = 1.5

[cluster]
preset = "mixed_256"
"#,
        )
        .expect("parses");
        let root = std::env::temp_dir().join(format!(
            "rsched_campaign_engine_mixed_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let campaign = Campaign::new(spec).out_root(&root);
        let pool = ThreadPool::new(2);
        let outcome = campaign.run(&pool).expect("runs");
        assert_eq!(outcome.results.len(), 8);
        assert!(outcome
            .results
            .iter()
            .all(|r| r.placements == 16 && r.metrics[0] > 0.0));
        let rerun = campaign.run(&pool).expect("reruns");
        assert_eq!((rerun.cached, rerun.ran), (8, 0), "classed cells cache");
        assert_eq!(rerun.results, outcome.results);
        let _ = std::fs::remove_dir_all(&root);
    }
}
