//! The declarative campaign spec: which policies × scenarios × job
//! counts × seeds to sweep, which objectives to analyze, and the solver
//! budget — parsed from a TOML-subset file and validated against the two
//! open registries **before any cell runs**.

use rsched_cluster::ClusterConfig;
use rsched_cpsolver::SolverConfig;
use rsched_metrics::Metric;
use rsched_registry::PolicyRegistry;
use rsched_workloads::ScenarioRegistry;

use crate::error::CampaignError;
use crate::toml::{TomlTable, TomlValue};

/// A declarative sweep campaign: the full grid is the cross product
/// `scenarios × jobs × policies × seeds`, minus [`exclusions`].
///
/// [`exclusions`]: CampaignSpec::exclude
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name — the `results/campaigns/<name>/` directory key.
    /// Restricted to `[A-Za-z0-9_-]` so it is always a safe path segment.
    pub name: String,
    /// Policy registry names (builtin or third-party registrations).
    pub policies: Vec<String>,
    /// Scenario registry names, including `swf:<path>` trace references.
    pub scenarios: Vec<String>,
    /// Queue sizes to sweep.
    pub jobs: Vec<usize>,
    /// Replication seeds: each seeds both the workload generator and (via
    /// a per-policy seed tree) the stochastic policies.
    pub seeds: Vec<u64>,
    /// The objectives analyzed in the Pareto report (§3.2 metric keys).
    pub objectives: Vec<Metric>,
    /// `(policy, jobs)` grid points excluded from the sweep, spelled
    /// `"Policy/jobs"` in the spec — the escape hatch for policies that
    /// are intractable at a given scale.
    pub exclude: Vec<(String, usize)>,
    /// Solver budget for solver-backed policies.
    pub solver: SolverConfig,
    /// The machine; `None` means [`ClusterConfig::paper_default`].
    pub cluster: Option<ClusterConfig>,
    /// Walltime-estimate skew applied to every generated workload: declared
    /// walltimes are stretched to `duration × skew` (`1.0` = exact
    /// estimates, the default). Models users who over-request walltime,
    /// which is what separates the estimate-aware backfill variants from
    /// their baselines.
    pub walltime_skew: f64,
}

impl CampaignSpec {
    /// Parse a campaign spec from TOML-subset text.
    pub fn parse(text: &str) -> Result<CampaignSpec, CampaignError> {
        let table = TomlTable::parse(text)?;
        for key in table.keys() {
            if !KNOWN_KEYS.contains(&key) {
                return Err(CampaignError::Validation(format!(
                    "unknown key `{key}` (known: {})",
                    KNOWN_KEYS.join(", ")
                )));
            }
        }
        let name = req_str(&table, "name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(CampaignError::Validation(format!(
                "campaign name `{name}` must be non-empty [A-Za-z0-9_-]"
            )));
        }
        let policies = req_str_list(&table, "policies")?;
        let scenarios = req_str_list(&table, "scenarios")?;
        let jobs = req_int_list(&table, "jobs")?
            .into_iter()
            .map(|v| usize::try_from(v).map_err(|_| bad_int("jobs", v)))
            .collect::<Result<Vec<_>, _>>()?;
        let seeds = req_int_list(&table, "seeds")?
            .into_iter()
            .map(|v| u64::try_from(v).map_err(|_| bad_int("seeds", v)))
            .collect::<Result<Vec<_>, _>>()?;
        if jobs.contains(&0) {
            return Err(CampaignError::Validation(
                "`jobs` entries must be positive".to_string(),
            ));
        }
        let objectives = match table.get("objectives") {
            None => default_objectives(),
            Some(value) => str_list("objectives", value)?
                .iter()
                .map(|key| {
                    Metric::from_key(key).ok_or_else(|| {
                        CampaignError::Validation(format!(
                            "unknown objective `{key}` (known: {})",
                            Metric::all().map(|m| m.key()).join(", ")
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let exclude = match table.get("exclude") {
            None => Vec::new(),
            Some(value) => str_list("exclude", value)?
                .iter()
                .map(|pattern| parse_exclude(pattern))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let solver = solver_from(&table)?;
        let cluster = cluster_from(&table)?;
        let walltime_skew = match table.get("walltime_skew") {
            None => 1.0,
            Some(v) => v
                .as_float()
                .filter(|s| s.is_finite() && *s >= 1.0)
                .ok_or_else(|| {
                    CampaignError::Validation(
                        "`walltime_skew` must be a finite number >= 1.0".to_string(),
                    )
                })?,
        };
        let spec = CampaignSpec {
            name,
            policies,
            scenarios,
            jobs,
            seeds,
            objectives,
            exclude,
            solver,
            cluster,
            walltime_skew,
        };
        spec.check_internal()?;
        Ok(spec)
    }

    /// Read and parse a spec file; parse errors are anchored to `path`.
    pub fn load(path: &str) -> Result<CampaignSpec, CampaignError> {
        let text = std::fs::read_to_string(path).map_err(|e| CampaignError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        CampaignSpec::parse(&text).map_err(|e| match e {
            CampaignError::Parse { location, message } => CampaignError::Parse {
                location: format!("{path}: {location}"),
                message,
            },
            other => other,
        })
    }

    /// Validate every grid axis against the registries the campaign will
    /// run with: unknown policy or scenario names fail here, before any
    /// cell executes. `swf:<path>` scenario names additionally require
    /// the trace file to exist.
    pub fn validate(
        &self,
        policies: &PolicyRegistry,
        scenarios: &ScenarioRegistry,
    ) -> Result<(), CampaignError> {
        for name in &self.policies {
            if !policies.contains(name) {
                return Err(CampaignError::Validation(format!(
                    "unknown policy `{name}` (known: {})",
                    policies.names().join(", ")
                )));
            }
        }
        for name in &self.scenarios {
            if !scenarios.contains(name) {
                return Err(CampaignError::Validation(format!(
                    "unknown scenario `{name}` (known: {})",
                    scenarios.names().join(", ")
                )));
            }
            if let Some(path) = name.strip_prefix("swf:") {
                if !std::path::Path::new(path).is_file() {
                    return Err(CampaignError::Validation(format!(
                        "scenario `{name}`: trace file `{path}` does not exist"
                    )));
                }
            }
        }
        for (policy, jobs) in &self.exclude {
            if !self.policies.iter().any(|p| p.eq_ignore_ascii_case(policy)) {
                return Err(CampaignError::Validation(format!(
                    "exclusion `{policy}/{jobs}` names a policy outside the campaign"
                )));
            }
            if !self.jobs.contains(jobs) {
                return Err(CampaignError::Validation(format!(
                    "exclusion `{policy}/{jobs}` names a job count outside the campaign"
                )));
            }
        }
        Ok(())
    }

    /// `true` if the `(policy, jobs)` grid point is excluded.
    pub fn is_excluded(&self, policy: &str, jobs: usize) -> bool {
        self.exclude
            .iter()
            .any(|(p, n)| *n == jobs && p.eq_ignore_ascii_case(policy))
    }

    /// The machine the campaign runs on.
    pub fn cluster(&self) -> ClusterConfig {
        self.cluster.unwrap_or_else(ClusterConfig::paper_default)
    }

    fn check_internal(&self) -> Result<(), CampaignError> {
        for (axis, len) in [
            ("policies", self.policies.len()),
            ("scenarios", self.scenarios.len()),
            ("jobs", self.jobs.len()),
            ("seeds", self.seeds.len()),
            ("objectives", self.objectives.len()),
        ] {
            if len == 0 {
                return Err(CampaignError::Validation(format!(
                    "`{axis}` must list at least one entry"
                )));
            }
        }
        // Name axes fold the way the registries do (case-insensitive;
        // scenarios also treat `-`/`_` as equivalent), so "Random" and
        // "random" cannot smuggle the same policy into the grid twice.
        for (axis, dups) in [
            ("policies", dup_by(&self.policies, |p| p.to_lowercase())),
            (
                "scenarios",
                dup_by(&self.scenarios, |s| s.to_lowercase().replace('-', "_")),
            ),
            ("jobs", dup(&self.jobs)),
            ("seeds", dup(&self.seeds)),
            ("objectives", dup(&self.objectives)),
        ] {
            if let Some(d) = dups {
                return Err(CampaignError::Validation(format!(
                    "`{axis}` lists `{d}` more than once"
                )));
            }
        }
        Ok(())
    }
}

/// The paper's four headline objectives — the single definition lives on
/// [`ObjectiveSpace::paper_default`](rsched_metrics::ObjectiveSpace::paper_default).
fn default_objectives() -> Vec<Metric> {
    rsched_metrics::ObjectiveSpace::paper_default()
        .metrics()
        .to_vec()
}

const KNOWN_KEYS: &[&str] = &[
    "name",
    "policies",
    "scenarios",
    "jobs",
    "seeds",
    "objectives",
    "exclude",
    "walltime_skew",
    "solver.exact_max_tasks",
    "solver.bnb_node_budget",
    "solver.sa_iterations_per_task",
    "solver.sa_iteration_cap",
    "solver.use_genetic",
    "cluster.nodes",
    "cluster.memory_gb",
    "cluster.preset",
];

fn dup<T: PartialEq + std::fmt::Debug>(items: &[T]) -> Option<String> {
    for (i, a) in items.iter().enumerate() {
        if items[..i].contains(a) {
            return Some(format!("{a:?}"));
        }
    }
    None
}

/// [`dup`] under a key-folding projection (registry-style name matching).
fn dup_by<T: std::fmt::Debug, K: PartialEq>(items: &[T], key: impl Fn(&T) -> K) -> Option<String> {
    let keys: Vec<K> = items.iter().map(&key).collect();
    for (i, k) in keys.iter().enumerate() {
        if keys[..i].contains(k) {
            return Some(format!("{:?}", items[i]));
        }
    }
    None
}

fn bad_int(axis: &str, v: i64) -> CampaignError {
    CampaignError::Validation(format!("`{axis}` entry {v} is out of range"))
}

fn req_str(table: &TomlTable, key: &str) -> Result<String, CampaignError> {
    match table.get(key) {
        Some(TomlValue::Str(s)) => Ok(s.clone()),
        Some(_) => Err(CampaignError::Validation(format!(
            "`{key}` must be a string"
        ))),
        None => Err(CampaignError::Validation(format!("missing `{key}`"))),
    }
}

fn str_list(key: &str, value: &TomlValue) -> Result<Vec<String>, CampaignError> {
    let items = value
        .as_list()
        .ok_or_else(|| CampaignError::Validation(format!("`{key}` must be an array of strings")))?;
    items
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                CampaignError::Validation(format!("`{key}` must contain only strings"))
            })
        })
        .collect()
}

fn req_str_list(table: &TomlTable, key: &str) -> Result<Vec<String>, CampaignError> {
    match table.get(key) {
        Some(value) => str_list(key, value),
        None => Err(CampaignError::Validation(format!("missing `{key}`"))),
    }
}

fn req_int_list(table: &TomlTable, key: &str) -> Result<Vec<i64>, CampaignError> {
    let value = table
        .get(key)
        .ok_or_else(|| CampaignError::Validation(format!("missing `{key}`")))?;
    let items = value.as_list().ok_or_else(|| {
        CampaignError::Validation(format!("`{key}` must be an array of integers"))
    })?;
    items
        .iter()
        .map(|v| {
            v.as_int().ok_or_else(|| {
                CampaignError::Validation(format!("`{key}` must contain only integers"))
            })
        })
        .collect()
}

fn parse_exclude(pattern: &str) -> Result<(String, usize), CampaignError> {
    let Some((policy, jobs)) = pattern.rsplit_once('/') else {
        return Err(CampaignError::Validation(format!(
            "exclusion `{pattern}` must be spelled `Policy/jobs` (e.g. `OR-Tools/10000`)"
        )));
    };
    let jobs: usize = jobs.trim().parse().map_err(|_| {
        CampaignError::Validation(format!(
            "exclusion `{pattern}`: `{jobs}` is not a job count"
        ))
    })?;
    let policy = policy.trim();
    if policy.is_empty() {
        return Err(CampaignError::Validation(format!(
            "exclusion `{pattern}` has an empty policy name"
        )));
    }
    Ok((policy.to_string(), jobs))
}

fn solver_from(table: &TomlTable) -> Result<SolverConfig, CampaignError> {
    let mut solver = SolverConfig::default();
    let int = |key: &str| -> Result<Option<i64>, CampaignError> {
        match table.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_int()
                .map(Some)
                .ok_or_else(|| CampaignError::Validation(format!("`{key}` must be an integer"))),
        }
    };
    if let Some(v) = int("solver.exact_max_tasks")? {
        solver.exact_max_tasks =
            usize::try_from(v).map_err(|_| bad_int("solver.exact_max_tasks", v))?;
    }
    if let Some(v) = int("solver.bnb_node_budget")? {
        solver.bnb_node_budget =
            u64::try_from(v).map_err(|_| bad_int("solver.bnb_node_budget", v))?;
    }
    if let Some(v) = int("solver.sa_iterations_per_task")? {
        solver.sa_iterations_per_task =
            u32::try_from(v).map_err(|_| bad_int("solver.sa_iterations_per_task", v))?;
    }
    if let Some(v) = int("solver.sa_iteration_cap")? {
        solver.sa_iteration_cap =
            u32::try_from(v).map_err(|_| bad_int("solver.sa_iteration_cap", v))?;
    }
    if let Some(v) = table.get("solver.use_genetic") {
        solver.use_genetic = v.as_bool().ok_or_else(|| {
            CampaignError::Validation("`solver.use_genetic` must be a boolean".to_string())
        })?;
    }
    Ok(solver)
}

fn cluster_from(table: &TomlTable) -> Result<Option<ClusterConfig>, CampaignError> {
    let nodes = table.get("cluster.nodes");
    let memory = table.get("cluster.memory_gb");
    if let Some(preset) = table.get("cluster.preset") {
        if nodes.is_some() || memory.is_some() {
            return Err(CampaignError::Validation(
                "`cluster.preset` excludes `cluster.nodes`/`cluster.memory_gb`".to_string(),
            ));
        }
        let name = preset.as_str().ok_or_else(|| {
            CampaignError::Validation("`cluster.preset` must be a string".to_string())
        })?;
        return match name {
            "paper_default" => Ok(Some(ClusterConfig::paper_default())),
            "mixed_256" => Ok(Some(ClusterConfig::mixed_256())),
            "polaris" => Ok(Some(ClusterConfig::polaris())),
            other => Err(CampaignError::Validation(format!(
                "unknown cluster preset `{other}` (known: paper_default, mixed_256, polaris)"
            ))),
        };
    }
    match (nodes, memory) {
        (None, None) => Ok(None),
        (Some(n), Some(m)) => {
            let n = n
                .as_int()
                .filter(|&v| v > 0 && v <= i64::from(u32::MAX))
                .ok_or_else(|| {
                    CampaignError::Validation("`cluster.nodes` must be a positive integer".into())
                })?;
            let m = m.as_int().filter(|&v| v > 0).ok_or_else(|| {
                CampaignError::Validation("`cluster.memory_gb` must be a positive integer".into())
            })?;
            Ok(Some(ClusterConfig::new(n as u32, m as u64)))
        }
        _ => Err(CampaignError::Validation(
            "`[cluster]` needs both `nodes` and `memory_gb`".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_workloads::scenario_builtins;

    const MINIMAL: &str = r#"
name = "smoke"
policies = ["FCFS", "SJF"]
scenarios = ["heterogeneous_mix", "resource_sparse"]
jobs = [60]
seeds = [2025, 2026]
"#;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = CampaignSpec::parse(MINIMAL).expect("parses");
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.policies, vec!["FCFS", "SJF"]);
        assert_eq!(spec.jobs, vec![60]);
        assert_eq!(spec.seeds, vec![2025, 2026]);
        assert_eq!(spec.objectives, default_objectives());
        assert!(spec.exclude.is_empty());
        assert_eq!(spec.solver, SolverConfig::default());
        assert_eq!(spec.cluster, None);
        assert_eq!(spec.cluster().nodes, ClusterConfig::paper_default().nodes);
        assert_eq!(spec.walltime_skew, 1.0);
    }

    #[test]
    fn cluster_preset_resolves_the_mixed_class_machine() {
        let text = format!("{MINIMAL}\nwalltime_skew = 1.5\n[cluster]\npreset = \"mixed_256\"");
        let spec = CampaignSpec::parse(&text).expect("parses");
        let cluster = spec.cluster();
        assert_eq!(cluster, ClusterConfig::mixed_256());
        assert!(!cluster.topology.is_flat());
        assert_eq!(spec.walltime_skew, 1.5);
        // Integer skew widens like any other float-position value.
        let int_skew = format!("{MINIMAL}\nwalltime_skew = 2");
        assert_eq!(
            CampaignSpec::parse(&int_skew)
                .expect("parses")
                .walltime_skew,
            2.0
        );
        let flat = format!("{MINIMAL}\n[cluster]\npreset = \"paper_default\"");
        assert_eq!(
            CampaignSpec::parse(&flat).expect("parses").cluster(),
            ClusterConfig::paper_default()
        );
    }

    #[test]
    fn full_spec_parses_every_field() {
        let text = r#"
name = "full-grid_1"
policies = ["FCFS", "OR-Tools"]
scenarios = ["long_tail"]
jobs = [60, 1000]
seeds = [1]
objectives = ["makespan", "node_util"]
exclude = ["OR-Tools/1000"]

[solver]
exact_max_tasks = 4
bnb_node_budget = 1000
sa_iterations_per_task = 10
sa_iteration_cap = 20
use_genetic = true

[cluster]
nodes = 16
memory_gb = 128
"#;
        let spec = CampaignSpec::parse(text).expect("parses");
        assert_eq!(
            spec.objectives,
            vec![Metric::Makespan, Metric::NodeUtilization]
        );
        assert_eq!(spec.exclude, vec![("OR-Tools".to_string(), 1000)]);
        assert!(spec.is_excluded("or-tools", 1000), "case-insensitive");
        assert!(!spec.is_excluded("OR-Tools", 60));
        assert_eq!(spec.solver.exact_max_tasks, 4);
        assert_eq!(spec.solver.bnb_node_budget, 1000);
        assert_eq!(spec.solver.sa_iterations_per_task, 10);
        assert_eq!(spec.solver.sa_iteration_cap, 20);
        assert!(spec.solver.use_genetic);
        assert_eq!(spec.cluster().nodes, 16);
        assert_eq!(spec.cluster().memory_gb, 128);
    }

    #[test]
    fn rejects_unknown_and_malformed_fields() {
        for (mutation, needle) in [
            ("typo_key = 1", "unknown key `typo_key`"),
            ("objectives = [\"power\"]", "unknown objective `power`"),
            ("exclude = [\"FCFS\"]", "must be spelled `Policy/jobs`"),
            ("exclude = [\"FCFS/many\"]", "not a job count"),
            ("[cluster]\nnodes = 4", "needs both"),
            ("[solver]\nsa_iteration_cap = -1", "out of range"),
            ("[cluster]\npreset = \"summit\"", "unknown cluster preset"),
            (
                "[cluster]\npreset = \"mixed_256\"\nnodes = 4",
                "excludes `cluster.nodes`",
            ),
            ("walltime_skew = 0.5", "must be a finite number >= 1.0"),
            ("walltime_skew = \"high\"", "must be a finite number"),
        ] {
            let text = format!("{MINIMAL}\n{mutation}");
            let err = CampaignSpec::parse(&text).expect_err(mutation);
            assert!(err.to_string().contains(needle), "{mutation}: {err}");
        }
    }

    #[test]
    fn rejects_empty_and_duplicate_axes() {
        let empty = MINIMAL.replace("jobs = [60]", "jobs = []");
        assert!(CampaignSpec::parse(&empty)
            .unwrap_err()
            .to_string()
            .contains("`jobs` must list at least one"));
        let dup = MINIMAL.replace("[2025, 2026]", "[2025, 2025]");
        assert!(CampaignSpec::parse(&dup)
            .unwrap_err()
            .to_string()
            .contains("more than once"));
        // Name axes fold like the registries: "sjf" aliases "SJF", and
        // "resource-sparse" aliases "resource_sparse".
        let dup_case = MINIMAL.replace("\"FCFS\", \"SJF\"", "\"FCFS\", \"SJF\", \"sjf\"");
        assert!(CampaignSpec::parse(&dup_case)
            .unwrap_err()
            .to_string()
            .contains("more than once"));
        let dup_sep = MINIMAL.replace(
            "\"resource_sparse\"",
            "\"resource_sparse\", \"Resource-Sparse\"",
        );
        assert!(CampaignSpec::parse(&dup_sep)
            .unwrap_err()
            .to_string()
            .contains("more than once"));
        let zero = MINIMAL.replace("jobs = [60]", "jobs = [0]");
        assert!(CampaignSpec::parse(&zero)
            .unwrap_err()
            .to_string()
            .contains("positive"));
        let bad_name = MINIMAL.replace("\"smoke\"", "\"has space\"");
        assert!(CampaignSpec::parse(&bad_name)
            .unwrap_err()
            .to_string()
            .contains("A-Za-z0-9"));
    }

    #[test]
    fn validation_rejects_unknown_names_before_any_run() {
        let policies = PolicyRegistry::with_builtins();
        let scenarios = scenario_builtins();
        let spec = CampaignSpec::parse(MINIMAL).expect("parses");
        spec.validate(&policies, scenarios).expect("all builtin");

        let mut bad = spec.clone();
        bad.policies.push("PBS-Pro".to_string());
        assert!(bad
            .validate(&policies, scenarios)
            .unwrap_err()
            .to_string()
            .contains("unknown policy `PBS-Pro`"));

        let mut bad = spec.clone();
        bad.scenarios.push("weekend_lull".to_string());
        assert!(bad
            .validate(&policies, scenarios)
            .unwrap_err()
            .to_string()
            .contains("unknown scenario"));

        let mut bad = spec.clone();
        bad.scenarios
            .push("swf:/definitely/not/here.swf".to_string());
        assert!(bad
            .validate(&policies, scenarios)
            .unwrap_err()
            .to_string()
            .contains("does not exist"));

        let mut bad = spec.clone();
        bad.exclude.push(("EASY".to_string(), 60));
        assert!(bad
            .validate(&policies, scenarios)
            .unwrap_err()
            .to_string()
            .contains("outside the campaign"));

        let mut bad = spec;
        bad.exclude.push(("FCFS".to_string(), 999));
        assert!(bad
            .validate(&policies, scenarios)
            .unwrap_err()
            .to_string()
            .contains("outside the campaign"));
    }

    #[test]
    fn load_anchors_errors_to_the_path() {
        match CampaignSpec::load("/not/a/real/spec.toml") {
            Err(CampaignError::Io { path, .. }) => assert!(path.contains("spec.toml")),
            other => panic!("unexpected {other:?}"),
        }
        let dir = std::env::temp_dir().join("rsched_campaign_spec_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bad.toml");
        std::fs::write(&path, "name 3").expect("writes");
        match CampaignSpec::load(path.to_str().unwrap()) {
            Err(CampaignError::Parse { location, .. }) => {
                assert!(location.contains("bad.toml: line 1"), "{location}")
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
