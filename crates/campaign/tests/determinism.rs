//! The campaign cache contract, end to end: a cold run, a cache-warm
//! rerun, and a fresh run in a different directory must all produce
//! **byte-identical** `summary.json` (and `fronts.csv`); corrupting one
//! cached cell file must force exactly that cell — and nothing else — to
//! re-execute.

use std::path::PathBuf;

use rsched_campaign::{Campaign, CampaignSpec, CountingCampaignObserver};
use rsched_parallel::ThreadPool;

const SPEC: &str = r#"
name = "determinism"
policies = ["FCFS", "SJF", "Random"]
scenarios = ["heterogeneous_mix", "resource_sparse"]
jobs = [10]
seeds = [1, 2]
objectives = ["avg_wait", "avg_turnaround", "node_util"]
"#;

fn tmp(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rsched_campaign_determinism_{label}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read(dir: &std::path::Path, name: &str, file: &str) -> String {
    std::fs::read_to_string(dir.join(name).join(file))
        .unwrap_or_else(|e| panic!("{file} under {}: {e}", dir.display()))
}

#[test]
fn cold_warm_and_fresh_runs_are_byte_identical() {
    let spec = CampaignSpec::parse(SPEC).expect("valid");
    let pool = ThreadPool::new(2);

    let root_a = tmp("a");
    let campaign_a = Campaign::new(spec.clone()).out_root(&root_a);
    let mut cold = CountingCampaignObserver::new();
    let outcome = campaign_a.run_observed(&pool, &mut cold).expect("cold run");
    assert_eq!(
        (cold.cached, cold.ran),
        (0, 12),
        "3 policies × 2 scenarios × 2 seeds"
    );
    let summary_cold = read(&root_a, "determinism", "summary.json");
    let csv_cold = read(&root_a, "determinism", "fronts.csv");

    // Cache-warm rerun in the same directory.
    let mut warm = CountingCampaignObserver::new();
    let rerun = campaign_a.run_observed(&pool, &mut warm).expect("warm run");
    assert_eq!(
        (warm.cached, warm.ran),
        (12, 0),
        "every cell served from cache"
    );
    assert_eq!(read(&root_a, "determinism", "summary.json"), summary_cold);
    assert_eq!(read(&root_a, "determinism", "fronts.csv"), csv_cold);
    assert_eq!(rerun.results, outcome.results);

    // Fresh run in a different directory: same bytes from scratch.
    let root_b = tmp("b");
    let campaign_b = Campaign::new(spec).out_root(&root_b);
    campaign_b.run(&pool).expect("fresh run");
    assert_eq!(read(&root_b, "determinism", "summary.json"), summary_cold);
    assert_eq!(read(&root_b, "determinism", "fronts.csv"), csv_cold);

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn corrupting_one_cell_reruns_exactly_that_cell() {
    let spec = CampaignSpec::parse(SPEC).expect("valid");
    let pool = ThreadPool::new(2);
    let root = tmp("corrupt");
    let campaign = Campaign::new(spec).out_root(&root);
    campaign.run(&pool).expect("cold run");
    let summary = read(&root, "determinism", "summary.json");

    // Corrupt exactly one cached cell (a deterministic pick: the
    // lexicographically first cell file).
    let cells_dir = root.join("determinism").join("cells");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&cells_dir)
        .expect("cells dir")
        .map(|e| e.expect("entry").path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 12);
    let victim = &files[0];
    let victim_name = victim.file_name().unwrap().to_string_lossy().to_string();
    std::fs::write(victim, "scrambled beyond recognition }{").expect("corrupts");

    let mut obs = CountingCampaignObserver::new();
    let rerun = campaign.run_observed(&pool, &mut obs).expect("repair run");
    assert_eq!((obs.cached, obs.ran), (11, 1), "exactly the victim re-ran");
    // The re-run cell is the one whose file we scrambled: file names embed
    // the cell coordinates, so match on the victim's stem.
    let relabel = &obs.ran_labels[0];
    let slug = victim_name.split("__").next().unwrap();
    assert!(
        relabel.starts_with(slug),
        "re-ran {relabel}, corrupted {victim_name}"
    );
    // And the repaired summary is still byte-identical.
    assert_eq!(read(&root, "determinism", "summary.json"), summary);
    assert_eq!(rerun.cached, 11);

    let _ = std::fs::remove_dir_all(&root);
}
