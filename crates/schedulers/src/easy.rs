//! FCFS with EASY backfilling — an ablation baseline.
//!
//! Not part of the paper's comparison set, but essential for interpreting
//! it: the LLM agent's biggest wins come from backfilling around blocked
//! heads, and this policy isolates exactly that mechanism without any
//! multiobjective reasoning.

use rsched_cluster::{JobId, JobSpec, NodeClass, ResourceVec};
use rsched_sim::scan::{first_match_specs, min_match_specs, scan_workers};
use rsched_sim::{Action, DelayReason, SchedulingPolicy, SystemView};
use rsched_simkit::{SimDuration, SimTime};

/// A rejected candidate's demand, snapshotted when the rejection was
/// observed — the epoch's **rejection demand frontier**. Dominance checks
/// compare against these stored fields directly instead of re-finding the
/// job in the waiting queue per candidate (the old `waiting_job` lookup
/// made the filter O(rejected × queue) per candidate).
#[derive(Debug, Clone)]
struct RejectedDemand {
    id: JobId,
    /// The demand at proposal time; `None` if the rejection arrived for an
    /// action this policy has no snapshot for (defensive only — every
    /// proposal stashes one), in which case the dominance check falls back
    /// to the queue lookup.
    demand: Option<DemandSnapshot>,
}

/// The dominance-relevant fields of a [`JobSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DemandSnapshot {
    nodes: u32,
    memory_gb: u64,
    walltime: SimDuration,
    per_node: ResourceVec,
    class: Option<NodeClass>,
}

impl DemandSnapshot {
    fn of(spec: &JobSpec) -> Self {
        DemandSnapshot {
            nodes: spec.nodes,
            memory_gb: spec.memory_gb,
            walltime: spec.walltime,
            per_node: spec.per_node,
            class: spec.class,
        }
    }
}

/// `true` if `candidate`'s demand dominates `r` in every dimension (same
/// class pin, ≥ nodes/memory/walltime, per-node vector dominance) — so a
/// shadow-time veto against `r` applies to `candidate` a fortiori.
fn dominates(candidate: &JobSpec, r: &DemandSnapshot) -> bool {
    candidate.class == r.class
        && candidate.nodes >= r.nodes
        && candidate.memory_gb >= r.memory_gb
        && candidate.walltime >= r.walltime
        && candidate.per_node.dominates(&r.per_node)
}

/// `true` if proposing `candidate` is pointless given this timestep's
/// rejection frontier: it was itself rejected, or it dominates a rejected
/// demand. A free function over plain slices so the sharded candidate
/// scan can evaluate it from worker threads.
fn dominated_by_rejection(
    rejected: &[RejectedDemand],
    waiting: &[JobSpec],
    candidate: &JobSpec,
) -> bool {
    rejected.iter().any(|r| {
        if r.id == candidate.id {
            return true;
        }
        match &r.demand {
            Some(d) => dominates(candidate, d),
            None => waiting
                .iter()
                .find(|j| j.id == r.id)
                .is_some_and(|j| dominates(candidate, &DemandSnapshot::of(j))),
        }
    })
}

/// FCFS head-first; when the head is blocked, backfill the first (arrival
/// order) waiting job that fits now — relying on the simulator's
/// shadow-time validation (served from the kernel's capacity calendar) to
/// reject unsafe picks, after which the policy tries the next candidate.
///
/// Rejections are remembered for the rest of the timestep as a demand
/// frontier, and the skip is **demand-aware**: a candidate whose demand
/// dominates an already-rejected candidate's in every dimension (nodes,
/// memory, walltime, per-node vector, same class pin) would draw the same
/// veto, so it is skipped without wasting a policy query on it.
///
/// On flat clusters with queues at least
/// [`PARALLEL_SCAN_MIN`](rsched_sim::PARALLEL_SCAN_MIN) deep, the
/// candidate filter shards across the scoped-thread scan path
/// ([`rsched_sim::scan`]) and reduces bit-identically to the serial scan.
///
/// The [`sjbf`](EasyBackfill::sjbf) variant orders backfill candidates by
/// shortest requested walltime first (SJBF) instead of arrival order — the
/// classic walltime-estimate-aware refinement.
#[derive(Debug, Clone, Default)]
pub struct EasyBackfill {
    /// Demands rejected at the current timestep (reset when time moves).
    rejected_this_epoch: Vec<RejectedDemand>,
    /// The job proposed by the most recent `decide`, snapshotted so a
    /// veto in `observe` can be recorded with its demand attached.
    last_proposed: Option<(JobId, DemandSnapshot)>,
    last_time: Option<SimTime>,
    /// Order backfill candidates by shortest walltime instead of arrival.
    shortest_first: bool,
    /// Why the most recent `decide` returned [`Action::Delay`]; harvested
    /// by the kernel through [`SchedulingPolicy::provenance`].
    last_delay: Option<DelayReason>,
}

impl EasyBackfill {
    /// A fresh policy with arrival-order backfilling.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shortest-job-backfilled-first variant (`EASY-SJBF`).
    pub fn sjbf() -> Self {
        EasyBackfill {
            shortest_first: true,
            ..Self::default()
        }
    }

    fn propose(&mut self, spec: &JobSpec, action: Action) -> Action {
        self.last_proposed = Some((spec.id, DemandSnapshot::of(spec)));
        action
    }
}

impl SchedulingPolicy for EasyBackfill {
    fn name(&self) -> &str {
        if self.shortest_first {
            "EASY-SJBF"
        } else {
            "EASY"
        }
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        self.last_delay = None;
        if self.last_time != Some(view.now) {
            self.last_time = Some(view.now);
            self.rejected_this_epoch.clear();
        }
        if view.all_jobs_started() {
            return Action::Stop;
        }
        let Some(head) = view.head_of_queue() else {
            self.last_delay = Some(DelayReason::QueueEmpty);
            return Action::Delay;
        };
        if view.fits_now(head) {
            return self.propose(head, Action::StartJob(head.id));
        }
        // Head blocked: backfill candidates in arrival order (or shortest
        // walltime first under SJBF).
        let candidate: Option<&JobSpec> = if view.config.topology.is_flat() {
            // Flat `fits_now` is the two scalar comparisons, so the filter
            // closes over plain `Sync` data and can shard across threads
            // once the queue is deep enough.
            let (free_nodes, free_memory_gb) = (view.free_nodes, view.free_memory_gb);
            let (head_id, waiting) = (head.id, view.waiting);
            let rejected = self.rejected_this_epoch.as_slice();
            let pred = |j: &JobSpec| {
                j.id != head_id
                    && j.nodes <= free_nodes
                    && j.memory_gb <= free_memory_gb
                    && !dominated_by_rejection(rejected, waiting, j)
            };
            let workers = scan_workers();
            if self.shortest_first {
                min_match_specs(waiting, pred, |j| (j.walltime, j.submit, j.id), workers)
            } else {
                first_match_specs(waiting, pred, workers)
            }
            .map(|at| &waiting[at])
        } else {
            let mut eligible = view
                .waiting
                .iter()
                .filter(|j| j.id != head.id)
                .filter(|j| view.fits_now(j))
                .filter(|j| !dominated_by_rejection(&self.rejected_this_epoch, view.waiting, j));
            if self.shortest_first {
                eligible.min_by_key(|j| (j.walltime, j.submit, j.id))
            } else {
                eligible.next()
            }
        };
        match candidate {
            Some(j) => self.propose(j, Action::BackfillJob(j.id)),
            None => {
                // The head is blocked and no surviving candidate fits; any
                // same-epoch vetoes are folded into the rejection frontier.
                self.last_delay = Some(DelayReason::HeadBlocked { head: head.id });
                Action::Delay
            }
        }
    }

    fn provenance(&mut self) -> Option<DelayReason> {
        self.last_delay.take()
    }

    fn observe(&mut self, outcome: &rsched_sim::ActionOutcome) {
        if !outcome.accepted() {
            if let Some(id) = outcome.action.job_id() {
                let demand = match &self.last_proposed {
                    Some((pid, snap)) if *pid == id => Some(*snap),
                    _ => None,
                };
                self.rejected_this_epoch.push(RejectedDemand { id, demand });
            }
        }
    }

    fn reset(&mut self) {
        self.rejected_this_epoch.clear();
        self.last_proposed = None;
        self.last_time = None;
        self.last_delay = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobId, JobSpec};
    use rsched_sim::{run_simulation, SimOptions};
    use rsched_simkit::{SimDuration, SimTime};

    fn spec(id: u32, submit_s: u64, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    fn run(jobs: &[JobSpec]) -> rsched_sim::SimOutcome {
        run_with(jobs, EasyBackfill::new())
    }

    fn run_with(jobs: &[JobSpec], mut policy: EasyBackfill) -> rsched_sim::SimOutcome {
        run_simulation(
            ClusterConfig::new(8, 64),
            jobs,
            &mut policy,
            &SimOptions {
                strict_backfill: true,
                ..SimOptions::default()
            },
        )
        .expect("completes")
    }

    #[test]
    fn backfills_small_jobs_around_blocked_head() {
        let jobs = vec![
            spec(0, 0, 100, 6),  // running, leaves 2 nodes
            spec(1, 5, 1000, 8), // head, blocked until t=100
            spec(2, 6, 10, 1),   // backfill candidate (ends t<=100: safe)
        ];
        let out = run(&jobs);
        let small = out.records.iter().find(|r| r.spec.id == JobId(2)).unwrap();
        assert_eq!(small.start, SimTime::from_secs(6), "EASY backfills");
        assert!(out.stats.backfills >= 1);
    }

    #[test]
    fn unsafe_backfill_is_skipped_after_rejection() {
        let jobs = vec![
            spec(0, 0, 100, 6),  // running, 2 nodes free
            spec(1, 5, 50, 8),   // head blocked until t=100
            spec(2, 6, 1000, 2), // would overlap shadow & steal nodes: unsafe
            spec(3, 7, 10, 1),   // safe alternative
        ];
        let out = run(&jobs);
        // Job 2 (2 nodes, very long) would leave only 6 free at shadow time
        // t=100 where head needs 8 → rejected; job 3 backfills instead.
        let safe = out.records.iter().find(|r| r.spec.id == JobId(3)).unwrap();
        assert_eq!(safe.start, SimTime::from_secs(7));
        let unsafe_job = out.records.iter().find(|r| r.spec.id == JobId(2)).unwrap();
        assert!(unsafe_job.start >= SimTime::from_secs(100));
        assert!(out.stats.rejections >= 1, "the unsafe pick was vetoed");
    }

    #[test]
    fn dominating_candidates_are_skipped_without_a_second_rejection() {
        let jobs = vec![
            spec(0, 0, 100, 6),  // running, 2 nodes free
            spec(1, 5, 50, 8),   // head blocked until t=100
            spec(2, 6, 1000, 2), // unsafe: rejected once
            spec(3, 7, 2000, 2), // dominates job 2 → skipped, never proposed
            spec(4, 8, 10, 1),   // safe: backfills
        ];
        let out = run(&jobs);
        // Job 2 is re-proposed once per timestep (the rejection memory
        // resets when time moves), but job 3 — which dominates it in every
        // dimension — must never be proposed at all: every veto names job 2.
        assert!(out.stats.rejections >= 1);
        for d in &out.decisions {
            if d.rejected.is_some() {
                assert_eq!(
                    d.action,
                    Action::BackfillJob(JobId(2)),
                    "only the non-dominated candidate may be rejected: {d:#?}"
                );
            }
            assert_ne!(
                d.action,
                Action::BackfillJob(JobId(3)),
                "dominated candidate was proposed: {:#?}",
                out.decisions
            );
        }
        let safe = out.records.iter().find(|r| r.spec.id == JobId(4)).unwrap();
        assert_eq!(safe.start, SimTime::from_secs(8), "safe job still lands");
        for id in [2u32, 3] {
            let r = out.records.iter().find(|r| r.spec.id == JobId(id)).unwrap();
            assert!(r.start >= SimTime::from_secs(100), "unsafe job {id} waited");
        }
    }

    #[test]
    fn sjbf_prefers_the_shortest_backfill_candidate() {
        let jobs = vec![
            spec(0, 0, 100, 6), // running, 2 nodes free
            spec(1, 5, 50, 8),  // head blocked until t=100
            spec(2, 6, 80, 1),  // arrival-order pick (safe: ends t=86)
            spec(3, 6, 10, 1),  // same arrival, shortest — SJBF's pick
        ];
        let arrival = run(&jobs);
        let sjbf = run_with(&jobs, EasyBackfill::sjbf());
        // Both candidates fit side by side and end up backfilled at t=6;
        // what differs is which one each variant proposes first.
        let first_backfill = |o: &rsched_sim::SimOutcome| {
            o.decisions
                .iter()
                .find_map(|d| match d.action {
                    Action::BackfillJob(id) => Some(id),
                    _ => None,
                })
                .expect("backfilled")
        };
        assert_eq!(first_backfill(&arrival), JobId(2));
        assert_eq!(first_backfill(&sjbf), JobId(3));
        for out in [&arrival, &sjbf] {
            for id in [2u32, 3] {
                let r = out.records.iter().find(|r| r.spec.id == JobId(id)).unwrap();
                assert_eq!(r.start, SimTime::from_secs(6), "job {id} backfilled");
            }
        }
    }

    #[test]
    fn behaves_like_fcfs_when_no_backfill_possible() {
        let jobs = vec![spec(0, 0, 50, 8), spec(1, 1, 20, 8), spec(2, 2, 20, 8)];
        let easy = run(&jobs);
        let fcfs = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut crate::fcfs::Fcfs::default(),
            &SimOptions::default(),
        )
        .expect("completes");
        let starts = |o: &rsched_sim::SimOutcome| {
            let mut v: Vec<(JobId, u64)> = o
                .records
                .iter()
                .map(|r| (r.spec.id, r.start.as_secs()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(starts(&easy), starts(&fcfs));
    }

    #[test]
    fn frontier_snapshot_matches_the_queue_lookup_semantics() {
        // The frontier stores the demand at proposal time; the job stays
        // in the waiting queue for the rest of the epoch, so the stored
        // snapshot and a fresh lookup must agree.
        let job = spec(7, 3, 500, 4);
        let snap = DemandSnapshot::of(&job);
        assert!(dominates(&spec(8, 4, 600, 5), &snap), "wider job dominated");
        assert!(!dominates(&spec(9, 4, 10, 5), &snap), "shorter walltime");
        let frontier = [RejectedDemand {
            id: JobId(7),
            demand: Some(snap),
        }];
        let waiting = [job.clone(), spec(8, 4, 600, 5)];
        assert!(dominated_by_rejection(&frontier, &waiting, &job), "self");
        assert!(dominated_by_rejection(&frontier, &waiting, &waiting[1]));
        // A `None` demand falls back to the queue lookup — same answer.
        let lazy = [RejectedDemand {
            id: JobId(7),
            demand: None,
        }];
        assert!(dominated_by_rejection(&lazy, &waiting, &waiting[1]));
        let gone: [JobSpec; 0] = [];
        assert!(
            !dominated_by_rejection(&lazy, &gone, &spec(8, 4, 600, 5)),
            "lookup miss means no dominance, as before"
        );
    }
}
