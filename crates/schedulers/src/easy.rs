//! FCFS with EASY backfilling — an ablation baseline.
//!
//! Not part of the paper's comparison set, but essential for interpreting
//! it: the LLM agent's biggest wins come from backfilling around blocked
//! heads, and this policy isolates exactly that mechanism without any
//! multiobjective reasoning.

use rsched_cluster::JobSpec;
use rsched_sim::{Action, SchedulingPolicy, SystemView};

/// FCFS head-first; when the head is blocked, backfill the first (arrival
/// order) waiting job that fits now — relying on the simulator's
/// shadow-time validation to reject unsafe picks, after which the policy
/// tries the next candidate.
#[derive(Debug, Clone, Default)]
pub struct EasyBackfill {
    /// Jobs rejected at the current timestep (reset when time moves).
    rejected_this_epoch: Vec<rsched_cluster::JobId>,
    last_time: Option<rsched_simkit::SimTime>,
}

impl EasyBackfill {
    /// A fresh policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulingPolicy for EasyBackfill {
    fn name(&self) -> &str {
        "EASY"
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        if self.last_time != Some(view.now) {
            self.last_time = Some(view.now);
            self.rejected_this_epoch.clear();
        }
        if view.all_jobs_started() {
            return Action::Stop;
        }
        let Some(head) = view.head_of_queue() else {
            return Action::Delay;
        };
        if view.fits_now(head) {
            return Action::StartJob(head.id);
        }
        // Head blocked: backfill candidates in arrival order.
        let candidate: Option<&JobSpec> = view
            .waiting
            .iter()
            .filter(|j| j.id != head.id)
            .filter(|j| view.fits_now(j))
            .find(|j| !self.rejected_this_epoch.contains(&j.id));
        match candidate {
            Some(j) => Action::BackfillJob(j.id),
            None => Action::Delay,
        }
    }

    fn observe(&mut self, outcome: &rsched_sim::ActionOutcome) {
        if !outcome.accepted() {
            if let Some(id) = outcome.action.job_id() {
                self.rejected_this_epoch.push(id);
            }
        }
    }

    fn reset(&mut self) {
        self.rejected_this_epoch.clear();
        self.last_time = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobId, JobSpec};
    use rsched_sim::{run_simulation, SimOptions};
    use rsched_simkit::{SimDuration, SimTime};

    fn spec(id: u32, submit_s: u64, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    fn run(jobs: &[JobSpec]) -> rsched_sim::SimOutcome {
        run_simulation(
            ClusterConfig::new(8, 64),
            jobs,
            &mut EasyBackfill::new(),
            &SimOptions {
                strict_backfill: true,
                ..SimOptions::default()
            },
        )
        .expect("completes")
    }

    #[test]
    fn backfills_small_jobs_around_blocked_head() {
        let jobs = vec![
            spec(0, 0, 100, 6),  // running, leaves 2 nodes
            spec(1, 5, 1000, 8), // head, blocked until t=100
            spec(2, 6, 10, 1),   // backfill candidate (ends t<=100: safe)
        ];
        let out = run(&jobs);
        let small = out.records.iter().find(|r| r.spec.id == JobId(2)).unwrap();
        assert_eq!(small.start, SimTime::from_secs(6), "EASY backfills");
        assert!(out.stats.backfills >= 1);
    }

    #[test]
    fn unsafe_backfill_is_skipped_after_rejection() {
        let jobs = vec![
            spec(0, 0, 100, 6),  // running, 2 nodes free
            spec(1, 5, 50, 8),   // head blocked until t=100
            spec(2, 6, 1000, 2), // would overlap shadow & steal nodes: unsafe
            spec(3, 7, 10, 1),   // safe alternative
        ];
        let out = run(&jobs);
        // Job 2 (2 nodes, very long) would leave only 6 free at shadow time
        // t=100 where head needs 8 → rejected; job 3 backfills instead.
        let safe = out.records.iter().find(|r| r.spec.id == JobId(3)).unwrap();
        assert_eq!(safe.start, SimTime::from_secs(7));
        let unsafe_job = out.records.iter().find(|r| r.spec.id == JobId(2)).unwrap();
        assert!(unsafe_job.start >= SimTime::from_secs(100));
        assert!(out.stats.rejections >= 1, "the unsafe pick was vetoed");
    }

    #[test]
    fn behaves_like_fcfs_when_no_backfill_possible() {
        let jobs = vec![spec(0, 0, 50, 8), spec(1, 1, 20, 8), spec(2, 2, 20, 8)];
        let easy = run(&jobs);
        let fcfs = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut crate::fcfs::Fcfs,
            &SimOptions::default(),
        )
        .expect("completes");
        let starts = |o: &rsched_sim::SimOutcome| {
            let mut v: Vec<(JobId, u64)> = o
                .records
                .iter()
                .map(|r| (r.spec.id, r.start.as_secs()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(starts(&easy), starts(&fcfs));
    }
}
