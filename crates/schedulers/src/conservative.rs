//! Conservative backfilling: a reservation for *every* waiting job.
//!
//! EASY protects only the queue head; a backfill may still delay the
//! second, third, … job in line. Conservative backfilling closes that gap:
//! each decision epoch derives a reservation list over the waiting queue
//! (in arrival order, up to [`RESERVATION_DEPTH`]), and a job may start now
//! only if doing so is consistent with every earlier reservation. The
//! policy therefore never relies on the simulator's shadow-time veto — its
//! own reservation list is the safety argument, and walltime estimates
//! (`walltime`, not the hidden `duration`) are what the reservations are
//! built from, which is exactly what the badly-estimated-walltime
//! scenarios stress.
//!
//! Since the capacity-calendar refactor the policy no longer rebuilds the
//! free-capacity profile from the whole running set on every `decide`: it
//! reads the kernel's cached per-epoch
//! [`CapacityCalendar`](rsched_sim::CapacityCalendar) (estimated-end
//! skyline, shared by every consumer in the epoch) and lays a reusable
//! [`ReservationProfile`] over it — a reserved-amount step overlay whose
//! fused `place` both finds and books each reservation against the
//! immutable base without cloning it. Three exact shortcuts keep the
//! saturated case cheap:
//!
//! * **flat fast path** (arrival order only): the base skyline is
//!   monotone, so a head that fits now *is* the first startable job — the
//!   unsaturated common case costs no profile work at all;
//! * **candidate pre-scan**: a job can only start now if it fits the
//!   current free capacity and was not rejected this epoch — both cheap
//!   scalar tests. If no job in the depth window qualifies, the pass must
//!   end in `Delay` and is skipped entirely; otherwise it stops at the
//!   last qualifying job, because reservations placed after it are never
//!   read by any remaining startability test;
//! * **head-shadow veto**: when the head cannot start, its reservation
//!   sits at the bare earliest fit `f0` on the base. A candidate whose
//!   window reaches `f0` must fit beside the mass reserved there or it is
//!   provably unstartable — checked against the head alone before the
//!   pass (vetoing many epochs outright) and re-checked incrementally
//!   during the pass as placed reservations stack up at `f0`, shrinking
//!   how far the reservation walk must go.

use rsched_cluster::{JobId, JobSpec};
use rsched_sim::{Action, DelayReason, ReservationProfile, SchedulingPolicy, SystemView};
use rsched_simkit::SimTime;

/// Reservation-list depth cap: queue positions beyond this neither get a
/// reservation nor are considered for backfill in that epoch. Bounds the
/// per-epoch cost to O(depth × profile) on pathological queues.
pub const RESERVATION_DEPTH: usize = 64;

/// FCFS with conservative backfilling (full reservation list).
///
/// The [`sjbf`](ConservativeBackfill::sjbf) variant picks the shortest
/// requested walltime among the startable candidates instead of the
/// earliest-arrived — the walltime-estimate-aware refinement.
#[derive(Debug, Clone, Default)]
pub struct ConservativeBackfill {
    /// Jobs rejected at the current timestep (reset when time moves),
    /// sorted by id for O(log n) membership checks.
    rejected_this_epoch: Vec<JobId>,
    last_time: Option<SimTime>,
    /// Pick the shortest startable candidate instead of the first.
    shortest_first: bool,
    /// Reusable reservation overlay — reloaded from the epoch's base
    /// calendar each pass, so steady state allocates nothing.
    profile: ReservationProfile,
    /// Why the most recent `decide` returned [`Action::Delay`]; harvested
    /// by the kernel through [`SchedulingPolicy::provenance`].
    last_delay: Option<DelayReason>,
}

impl ConservativeBackfill {
    /// A fresh policy with arrival-order candidate selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shortest-job-backfilled-first variant (`Conservative-SJBF`).
    pub fn sjbf() -> Self {
        ConservativeBackfill {
            shortest_first: true,
            ..Self::default()
        }
    }

    fn rejected(&self, id: JobId) -> bool {
        self.rejected_this_epoch.binary_search(&id).is_ok()
    }

    fn delay(&mut self, reason: DelayReason) -> Action {
        self.last_delay = Some(reason);
        Action::Delay
    }
}

impl SchedulingPolicy for ConservativeBackfill {
    fn name(&self) -> &str {
        if self.shortest_first {
            "Conservative-SJBF"
        } else {
            "Conservative"
        }
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        self.last_delay = None;
        if self.last_time != Some(view.now) {
            self.last_time = Some(view.now);
            self.rejected_this_epoch.clear();
        }
        if view.all_jobs_started() {
            return Action::Stop;
        }
        let Some(head) = view.head_of_queue() else {
            return self.delay(DelayReason::QueueEmpty);
        };
        // Flat-cluster fast path (arrival order only): the base skyline is
        // monotone per column, so a head that fits now gets earliest start
        // `now` and — being first in arrival order — is the pick. Classed
        // clusters can't take it (class-aware `fits_now` and the scalar
        // profile columns may disagree), and SJBF still needs the full
        // startable set to take its minimum over.
        if !self.shortest_first
            && view.config.topology.is_flat()
            && view.fits_now(head)
            && !self.rejected(head.id)
        {
            return Action::StartJob(head.id);
        }
        // Candidate pre-scan: startable requires `fits_now` and no
        // same-epoch rejection, both cheap scalar tests. No qualifying job
        // in the depth window means the reservation pass below could only
        // return `Delay` — skip it. Otherwise the pass stops at the last
        // qualifying job: reservations placed after it are only ever read
        // by the startability tests of even later jobs, none of which
        // qualify.
        let mut candidates = 0u64;
        for (i, job) in view.waiting.iter().take(RESERVATION_DEPTH).enumerate() {
            if view.fits_now(job) && !self.rejected(job.id) {
                candidates |= 1 << i;
            }
        }
        if candidates == 0 {
            let considered = view.waiting.len().min(RESERVATION_DEPTH) as u32;
            return self.delay(DelayReason::NoStartableCandidate { considered });
        }
        let base = view.capacity_calendar();
        // Head-shadow veto. The pass places the head first, against an
        // empty overlay, so its reservation always sits at the bare
        // earliest fit `f0` (a monotone base never fails a window). A
        // candidate whose own window reaches `f0` and cannot fit beside
        // the head demand at the `f0` level fails at that merged point in
        // the full pass too (the overlay only reserves more) — it is
        // provably unstartable without placing a single reservation. The
        // pass therefore only has to walk to the last *unvetoed*
        // candidate (reservations past it are read only by the
        // startability tests of provably-blocked jobs); when the veto
        // blocks every candidate — a scalar-blocked head (`f0 > now`)
        // blocks candidate bit 0 outright — the epoch is a `Delay` with
        // no pass at all.
        let head_start = base.earliest_fit_flat(head.nodes, head.memory_gb);
        // Survivors split by why the veto is inconclusive: `surv_early`
        // windows end at or before `f0` (the head reservation never
        // touches them); `surv_beside` demands fit beside the head at the
        // `f0` shadow level. The beside set shrinks further during the
        // pass as reservations stack up at `f0`.
        let mut surv_early = candidates;
        let mut surv_beside = 0u64;
        let (mut shadow_nodes, mut shadow_mem) = (0u32, 0u64);
        if head_start > view.now {
            let shadow = base.at(head_start);
            shadow_nodes = shadow.free_nodes;
            shadow_mem = shadow.free_memory_gb;
            let beside_nodes = shadow_nodes.saturating_sub(head.nodes);
            let beside_mem = shadow_mem.saturating_sub(head.memory_gb);
            let mut rest = candidates & !1;
            surv_early = 0;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let job = &view.waiting[i];
                if view.now + job.walltime <= head_start {
                    surv_early |= 1 << i;
                } else if job.nodes <= beside_nodes && job.memory_gb <= beside_mem {
                    surv_beside |= 1 << i;
                }
            }
        }
        if surv_early | surv_beside == 0 {
            // Always a head-shadow veto: when the head fits now
            // (`head_start <= now`) the survivor set starts as the nonempty
            // candidate set and this exit cannot be reached.
            view.sink().count("sim_conservative_shadow_vetoes_total", 1);
            return self.delay(DelayReason::HeadShadowVeto {
                head: head.id,
                shadow: head_start,
            });
        }
        // Reservation pass in arrival order over the epoch's shared base
        // calendar: clear the reusable reserved-amount overlay, reserve
        // every considered job at its earliest feasible window, and
        // collect the jobs whose window lands at `now` (they can start
        // without delaying anyone reserved before them).
        //
        // The pass walks only as far as the last surviving candidate —
        // reservations past it are read solely by the startability tests
        // of provably-blocked jobs. As placed reservations accumulate at
        // `f0`, the exact overlay amounts in force there (`f0_nodes`,
        // `f0_mem`, O(1) per placement) re-run the beside test: a
        // beside-survivor that no longer fits next to that mass fails at
        // the `f0` point of its own window in the full pass too (the
        // overlay only ever grows within a pass), so it is pruned and the
        // walk bound tightens as the hole at `f0` fills.
        let telemetry = view.sink();
        let _pass_span = telemetry.span("conservative.reservation_pass", view.now);
        telemetry.count("sim_conservative_reservation_passes_total", 1);
        self.profile.clear();
        let mut startable: Vec<&JobSpec> = Vec::new();
        let (mut f0_nodes, mut f0_mem) = (0u32, 0u64);
        let mut i = 0;
        loop {
            let job = &view.waiting[i];
            // `place` reserves unconditionally; that is harmless on the
            // startable early return, because the overlay is cleared at
            // the top of every pass.
            let start = self
                .profile
                .place(&base, job.nodes, job.memory_gb, job.walltime);
            if start <= view.now && candidates & (1 << i) != 0 {
                if !self.shortest_first {
                    // Arrival order: the first startable job is the pick —
                    // later reservations cannot change it.
                    return if job.id == head.id {
                        Action::StartJob(job.id)
                    } else {
                        Action::BackfillJob(job.id)
                    };
                }
                startable.push(job);
            }
            if head_start > view.now && start <= head_start && head_start < start + job.walltime {
                f0_nodes += job.nodes;
                f0_mem += job.memory_gb;
                let avail_nodes = shadow_nodes.saturating_sub(f0_nodes);
                let avail_mem = shadow_mem.saturating_sub(f0_mem);
                let mut rest = surv_beside;
                while rest != 0 {
                    let j = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let c = &view.waiting[j];
                    if c.nodes > avail_nodes || c.memory_gb > avail_mem {
                        surv_beside &= !(1 << j);
                    }
                }
            }
            i += 1;
            let surviving = surv_early | surv_beside;
            if i >= 64 || surviving >> i == 0 {
                break;
            }
        }
        let pick = startable
            .into_iter()
            .min_by_key(|j| (j.walltime, j.submit, j.id));
        match pick {
            Some(j) if j.id == head.id => Action::StartJob(j.id),
            Some(j) => Action::BackfillJob(j.id),
            None => self.delay(DelayReason::ReservationBlocked),
        }
    }

    fn provenance(&mut self) -> Option<DelayReason> {
        self.last_delay.take()
    }

    fn observe(&mut self, outcome: &rsched_sim::ActionOutcome) {
        if !outcome.accepted() {
            if let Some(id) = outcome.action.job_id() {
                if let Err(at) = self.rejected_this_epoch.binary_search(&id) {
                    self.rejected_this_epoch.insert(at, id);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.rejected_this_epoch.clear();
        self.last_time = None;
        self.last_delay = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobId, JobSpec};
    use rsched_sim::{run_simulation, SimOptions, SimOutcome};
    use rsched_simkit::{SimDuration, SimTime};

    fn spec(id: u32, submit_s: u64, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    /// Note: `strict_backfill` stays OFF — the reservation list itself must
    /// keep every pick safe.
    fn run_with(jobs: &[JobSpec], mut policy: ConservativeBackfill) -> SimOutcome {
        run_simulation(
            ClusterConfig::new(8, 64),
            jobs,
            &mut policy,
            &SimOptions::default(),
        )
        .expect("completes")
    }

    fn start(out: &SimOutcome, id: u32) -> SimTime {
        out.records
            .iter()
            .find(|r| r.spec.id == JobId(id))
            .unwrap()
            .start
    }

    #[test]
    fn reservations_keep_unsafe_backfills_out_without_simulator_help() {
        let jobs = vec![
            spec(0, 0, 100, 6),  // running, 2 nodes free
            spec(1, 5, 50, 8),   // head, reserved at t=100
            spec(2, 6, 1000, 2), // would delay the head — never proposed early
            spec(3, 7, 10, 1),   // fits before the head's reservation
        ];
        let out = run_with(&jobs, ConservativeBackfill::new());
        assert_eq!(start(&out, 1), SimTime::from_secs(100), "head undelayed");
        assert!(
            start(&out, 2) >= SimTime::from_secs(150),
            "long job honours the head's reservation: {:?}",
            start(&out, 2)
        );
        assert_eq!(start(&out, 3), SimTime::from_secs(7), "short job backfills");
        assert_eq!(out.stats.rejections, 0, "no simulator veto was needed");
    }

    #[test]
    fn protects_reservations_beyond_the_head() {
        // EASY protects only job 1; conservative also protects job 2.
        let jobs = vec![
            spec(0, 0, 100, 6), // running, 2 nodes free
            spec(1, 5, 50, 8),  // head: reserved [100, 150)
            spec(2, 6, 50, 6),  // second in line: reserved [150, 200)
            spec(3, 7, 60, 2),  // fits now, ends t≈67 < 100: harmless
        ];
        let out = run_with(&jobs, ConservativeBackfill::new());
        assert_eq!(start(&out, 1), SimTime::from_secs(100));
        assert_eq!(start(&out, 2), SimTime::from_secs(150));
        assert_eq!(start(&out, 3), SimTime::from_secs(7));
    }

    #[test]
    fn sjbf_variant_picks_the_shortest_startable_candidate() {
        let jobs = vec![
            spec(0, 0, 100, 6), // running, 2 nodes free
            spec(1, 5, 50, 8),  // head blocked until t=100
            spec(2, 6, 80, 1),  // arrival-order pick
            spec(3, 6, 10, 1),  // same arrival, shortest
        ];
        let arrival = run_with(&jobs, ConservativeBackfill::new());
        let sjbf = run_with(&jobs, ConservativeBackfill::sjbf());
        let first_backfill = |o: &SimOutcome| {
            o.decisions
                .iter()
                .find_map(|d| match d.action {
                    Action::BackfillJob(id) => Some(id),
                    _ => None,
                })
                .expect("backfilled")
        };
        assert_eq!(first_backfill(&arrival), JobId(2));
        assert_eq!(first_backfill(&sjbf), JobId(3));
        assert_eq!(start(&arrival, 1), SimTime::from_secs(100));
        assert_eq!(start(&sjbf, 1), SimTime::from_secs(100));
    }

    #[test]
    fn behaves_like_fcfs_when_no_backfill_possible() {
        let jobs = vec![spec(0, 0, 50, 8), spec(1, 1, 20, 8), spec(2, 2, 20, 8)];
        let cons = run_with(&jobs, ConservativeBackfill::new());
        let fcfs = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut crate::fcfs::Fcfs::default(),
            &SimOptions::default(),
        )
        .expect("completes");
        let starts = |o: &SimOutcome| {
            let mut v: Vec<(JobId, u64)> = o
                .records
                .iter()
                .map(|r| (r.spec.id, r.start.as_secs()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(starts(&cons), starts(&fcfs));
    }

    #[test]
    fn deep_queue_is_bounded_by_the_reservation_depth() {
        // 200 one-node jobs behind a machine-wide head: the policy must
        // stay deterministic and complete despite the depth cap.
        let mut jobs = vec![spec(0, 0, 50, 8)];
        for i in 1..=200u32 {
            jobs.push(spec(i, 1, 10, 1));
        }
        let out = run_with(&jobs, ConservativeBackfill::new());
        assert_eq!(out.records.len(), jobs.len());
    }

    #[test]
    fn classed_cluster_skips_the_flat_fast_path_and_still_schedules() {
        // On mixed_256 the head fast path must not fire (class-aware
        // fits_now vs scalar profile columns): the full reservation pass
        // must still start everything.
        let mut jobs = Vec::new();
        for i in 0..8u32 {
            jobs.push(spec(i, i as u64, 30, 16));
        }
        let out = run_simulation(
            ClusterConfig::mixed_256(),
            &jobs,
            &mut ConservativeBackfill::new(),
            &SimOptions::default(),
        )
        .expect("completes");
        assert_eq!(out.records.len(), jobs.len());
    }
}
