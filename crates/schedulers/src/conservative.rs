//! Conservative backfilling: a reservation for *every* waiting job.
//!
//! EASY protects only the queue head; a backfill may still delay the
//! second, third, … job in line. Conservative backfilling closes that gap:
//! each decision epoch rebuilds a reservation list over the waiting queue
//! (in arrival order, up to [`RESERVATION_DEPTH`]), and a job may start now
//! only if doing so is consistent with every earlier reservation. The
//! policy therefore never relies on the simulator's shadow-time veto — its
//! own reservation list is the safety argument, and walltime estimates
//! (`walltime`, not the hidden `duration`) are what the reservations are
//! built from, which is exactly what the badly-estimated-walltime
//! scenarios stress.

use rsched_cluster::{JobId, JobSpec};
use rsched_sim::{Action, SchedulingPolicy, SystemView};
use rsched_simkit::SimTime;

/// Reservation-list depth cap: queue positions beyond this neither get a
/// reservation nor are considered for backfill in that epoch. Bounds the
/// per-epoch cost to O(depth × profile) on pathological queues.
pub const RESERVATION_DEPTH: usize = 64;

/// A step function of free capacity over time: `(time, free_nodes,
/// free_memory_gb)`, sorted by time; each entry holds until the next, the
/// last holds forever.
type Profile = Vec<(SimTime, u32, u64)>;

/// FCFS with conservative backfilling (full reservation list).
///
/// The [`sjbf`](ConservativeBackfill::sjbf) variant picks the shortest
/// requested walltime among the startable candidates instead of the
/// earliest-arrived — the walltime-estimate-aware refinement.
#[derive(Debug, Clone, Default)]
pub struct ConservativeBackfill {
    /// Jobs rejected at the current timestep (reset when time moves).
    rejected_this_epoch: Vec<JobId>,
    last_time: Option<SimTime>,
    /// Pick the shortest startable candidate instead of the first.
    shortest_first: bool,
}

impl ConservativeBackfill {
    /// A fresh policy with arrival-order candidate selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shortest-job-backfilled-first variant (`Conservative-SJBF`).
    pub fn sjbf() -> Self {
        ConservativeBackfill {
            shortest_first: true,
            ..Self::default()
        }
    }
}

/// The free-capacity profile implied by the running set's *estimated* end
/// times: capacity comes back at each `expected_end`.
fn free_profile(view: &SystemView<'_>) -> Profile {
    let mut ends: Vec<(SimTime, u32, u64)> = view
        .running
        .iter()
        .map(|r| (r.expected_end, r.nodes, r.memory_gb))
        .collect();
    ends.sort_unstable();
    let mut points: Profile = vec![(view.now, view.free_nodes, view.free_memory_gb)];
    for (t, nodes, mem) in ends {
        let &(last_t, last_n, last_m) = points.last().expect("non-empty");
        let (free_n, free_m) = (last_n + nodes, last_m + mem);
        if t <= last_t {
            // expected_end ≤ now: the job overran its estimate (walltime
            // underestimated duration) and still holds its nodes. Credit
            // the release at `now` — optimistic by that job's remainder.
            let last = points.last_mut().expect("non-empty");
            last.1 = free_n;
            last.2 = free_m;
        } else {
            points.push((t, free_n, free_m));
        }
    }
    points
}

/// Earliest profile point at which `(nodes, mem)` stays available for the
/// whole `[start, start + walltime)` window. Always exists: past the last
/// point the machine is fully free.
fn earliest_start(points: &Profile, job: &JobSpec) -> SimTime {
    'candidate: for i in 0..points.len() {
        let start = points[i].0;
        let end = start + job.walltime;
        for &(t, free_n, free_m) in &points[i..] {
            if t >= end {
                break;
            }
            if free_n < job.nodes || free_m < job.memory_gb {
                continue 'candidate;
            }
        }
        return start;
    }
    unreachable!("the final profile point is the fully-free machine")
}

/// Insert a boundary point at `t` (carrying the preceding value) if absent.
fn insert_boundary(points: &mut Profile, t: SimTime) {
    match points.binary_search_by_key(&t, |p| p.0) {
        Ok(_) => {}
        Err(0) => {} // before `now`: the [start, end) clamp covers it
        Err(i) => {
            let (_, n, m) = points[i - 1];
            points.insert(i, (t, n, m));
        }
    }
}

/// Subtract a reservation of `(nodes, mem)` over `[start, end)`.
fn reserve(points: &mut Profile, start: SimTime, end: SimTime, nodes: u32, mem: u64) {
    insert_boundary(points, start);
    insert_boundary(points, end);
    for p in points.iter_mut() {
        if p.0 >= start && p.0 < end {
            p.1 = p.1.saturating_sub(nodes);
            p.2 = p.2.saturating_sub(mem);
        }
    }
}

impl SchedulingPolicy for ConservativeBackfill {
    fn name(&self) -> &str {
        if self.shortest_first {
            "Conservative-SJBF"
        } else {
            "Conservative"
        }
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        if self.last_time != Some(view.now) {
            self.last_time = Some(view.now);
            self.rejected_this_epoch.clear();
        }
        if view.all_jobs_started() {
            return Action::Stop;
        }
        if view.waiting.is_empty() {
            return Action::Delay;
        }
        // Rebuild the reservation list in arrival order; collect the jobs
        // whose reservation lands at `now` (they can start without delaying
        // anyone reserved before them).
        let mut points = free_profile(view);
        let mut startable: Vec<&JobSpec> = Vec::new();
        for job in view.waiting.iter().take(RESERVATION_DEPTH) {
            let start = earliest_start(&points, job);
            if start <= view.now
                && view.fits_now(job)
                && !self.rejected_this_epoch.contains(&job.id)
            {
                startable.push(job);
            }
            reserve(
                &mut points,
                start,
                start + job.walltime,
                job.nodes,
                job.memory_gb,
            );
        }
        let head_id = view.head_of_queue().map(|h| h.id);
        let pick = if self.shortest_first {
            startable
                .into_iter()
                .min_by_key(|j| (j.walltime, j.submit, j.id))
        } else {
            startable.into_iter().next()
        };
        match pick {
            Some(j) if Some(j.id) == head_id => Action::StartJob(j.id),
            Some(j) => Action::BackfillJob(j.id),
            None => Action::Delay,
        }
    }

    fn observe(&mut self, outcome: &rsched_sim::ActionOutcome) {
        if !outcome.accepted() {
            if let Some(id) = outcome.action.job_id() {
                self.rejected_this_epoch.push(id);
            }
        }
    }

    fn reset(&mut self) {
        self.rejected_this_epoch.clear();
        self.last_time = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobId, JobSpec};
    use rsched_sim::{run_simulation, SimOptions, SimOutcome};
    use rsched_simkit::{SimDuration, SimTime};

    fn spec(id: u32, submit_s: u64, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    /// Note: `strict_backfill` stays OFF — the reservation list itself must
    /// keep every pick safe.
    fn run_with(jobs: &[JobSpec], mut policy: ConservativeBackfill) -> SimOutcome {
        run_simulation(
            ClusterConfig::new(8, 64),
            jobs,
            &mut policy,
            &SimOptions::default(),
        )
        .expect("completes")
    }

    fn start(out: &SimOutcome, id: u32) -> SimTime {
        out.records
            .iter()
            .find(|r| r.spec.id == JobId(id))
            .unwrap()
            .start
    }

    #[test]
    fn reservations_keep_unsafe_backfills_out_without_simulator_help() {
        let jobs = vec![
            spec(0, 0, 100, 6),  // running, 2 nodes free
            spec(1, 5, 50, 8),   // head, reserved at t=100
            spec(2, 6, 1000, 2), // would delay the head — never proposed early
            spec(3, 7, 10, 1),   // fits before the head's reservation
        ];
        let out = run_with(&jobs, ConservativeBackfill::new());
        assert_eq!(start(&out, 1), SimTime::from_secs(100), "head undelayed");
        assert!(
            start(&out, 2) >= SimTime::from_secs(150),
            "long job honours the head's reservation: {:?}",
            start(&out, 2)
        );
        assert_eq!(start(&out, 3), SimTime::from_secs(7), "short job backfills");
        assert_eq!(out.stats.rejections, 0, "no simulator veto was needed");
    }

    #[test]
    fn protects_reservations_beyond_the_head() {
        // EASY protects only job 1; conservative also protects job 2.
        let jobs = vec![
            spec(0, 0, 100, 6), // running, 2 nodes free
            spec(1, 5, 50, 8),  // head: reserved [100, 150)
            spec(2, 6, 50, 6),  // second in line: reserved [150, 200)
            spec(3, 7, 60, 2),  // fits now, ends t≈67 < 100: harmless
        ];
        let out = run_with(&jobs, ConservativeBackfill::new());
        assert_eq!(start(&out, 1), SimTime::from_secs(100));
        assert_eq!(start(&out, 2), SimTime::from_secs(150));
        assert_eq!(start(&out, 3), SimTime::from_secs(7));
    }

    #[test]
    fn sjbf_variant_picks_the_shortest_startable_candidate() {
        let jobs = vec![
            spec(0, 0, 100, 6), // running, 2 nodes free
            spec(1, 5, 50, 8),  // head blocked until t=100
            spec(2, 6, 80, 1),  // arrival-order pick
            spec(3, 6, 10, 1),  // same arrival, shortest
        ];
        let arrival = run_with(&jobs, ConservativeBackfill::new());
        let sjbf = run_with(&jobs, ConservativeBackfill::sjbf());
        let first_backfill = |o: &SimOutcome| {
            o.decisions
                .iter()
                .find_map(|d| match d.action {
                    Action::BackfillJob(id) => Some(id),
                    _ => None,
                })
                .expect("backfilled")
        };
        assert_eq!(first_backfill(&arrival), JobId(2));
        assert_eq!(first_backfill(&sjbf), JobId(3));
        assert_eq!(start(&arrival, 1), SimTime::from_secs(100));
        assert_eq!(start(&sjbf, 1), SimTime::from_secs(100));
    }

    #[test]
    fn behaves_like_fcfs_when_no_backfill_possible() {
        let jobs = vec![spec(0, 0, 50, 8), spec(1, 1, 20, 8), spec(2, 2, 20, 8)];
        let cons = run_with(&jobs, ConservativeBackfill::new());
        let fcfs = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut crate::fcfs::Fcfs,
            &SimOptions::default(),
        )
        .expect("completes");
        let starts = |o: &SimOutcome| {
            let mut v: Vec<(JobId, u64)> = o
                .records
                .iter()
                .map(|r| (r.spec.id, r.start.as_secs()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(starts(&cons), starts(&fcfs));
    }

    #[test]
    fn deep_queue_is_bounded_by_the_reservation_depth() {
        // 200 one-node jobs behind a machine-wide head: the policy must
        // stay deterministic and complete despite the depth cap.
        let mut jobs = vec![spec(0, 0, 50, 8)];
        for i in 1..=200u32 {
            jobs.push(spec(i, 1, 10, 1));
        }
        let out = run_with(&jobs, ConservativeBackfill::new());
        assert_eq!(out.records.len(), jobs.len());
    }
}
