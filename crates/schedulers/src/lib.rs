//! # rsched-schedulers
//!
//! The baseline scheduling policies the paper compares against (§3.3):
//!
//! * [`Fcfs`] — *"the simplest scheduling algorithm that executes jobs
//!   strictly in their arrival order, subject to resource constraints."*
//! * [`Sjf`] — *"prioritizes jobs with the shortest estimated runtime,
//!   typically reducing average turnaround time but potentially starving
//!   longer jobs, compromising fairness."*
//! * [`OrToolsPolicy`] — the optimization-based baseline: an offline
//!   makespan-minimizing solve (via `rsched-cpsolver`, our OR-Tools
//!   substitute) replayed against the live cluster. Utilization-focused
//!   and fairness-blind, as the paper observes.
//!
//! Plus the extensions used by the ablation studies:
//!
//! * [`EasyBackfill`] — FCFS with EASY backfilling; isolates how much of
//!   the LLM agent's win is "just backfilling". Its
//!   [`sjbf`](EasyBackfill::sjbf) variant backfills shortest-walltime
//!   first.
//! * [`ConservativeBackfill`] — FCFS with conservative backfilling (a
//!   reservation for every waiting job, not just the head), also with an
//!   [`sjbf`](ConservativeBackfill::sjbf) variant. Together with EASY
//!   these form the backfilling policy family swept by the heterogeneous
//!   campaigns.
//! * [`RandomPolicy`] — a seeded random eligible-job picker, the sanity
//!   floor.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod conservative;
pub mod easy;
pub mod fcfs;
pub mod ortools;
pub mod random;
pub mod sjf;

pub use conservative::ConservativeBackfill;
pub use easy::EasyBackfill;
pub use fcfs::Fcfs;
pub use ortools::OrToolsPolicy;
pub use random::RandomPolicy;
pub use sjf::Sjf;
