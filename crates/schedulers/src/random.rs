//! A seeded random policy — the sanity floor for comparisons.

use rsched_simkit::rng::{Rng, Xoshiro256PlusPlus};

use rsched_sim::{Action, SchedulingPolicy, SystemView};

/// Starts a uniformly random eligible job; delays when nothing fits.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: Xoshiro256PlusPlus,
    seed: u64,
}

impl RandomPolicy {
    /// A policy drawing from the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            seed,
        }
    }
}

impl SchedulingPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "Random"
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        if view.all_jobs_started() {
            return Action::Stop;
        }
        let eligible: Vec<_> = view.eligible_now().collect();
        if eligible.is_empty() {
            return Action::Delay;
        }
        let pick = self.rng.gen_index(eligible.len());
        Action::StartJob(eligible[pick].id)
    }

    fn reset(&mut self) {
        self.rng = Xoshiro256PlusPlus::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobSpec};
    use rsched_sim::{run_simulation, SimOptions};
    use rsched_simkit::{SimDuration, SimTime};

    fn jobs(n: u32) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                JobSpec::new(
                    i,
                    i % 3,
                    SimTime::ZERO,
                    SimDuration::from_secs(10 + (i as u64 * 31) % 100),
                    1 + i % 4,
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn completes_all_jobs() {
        let out = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs(25),
            &mut RandomPolicy::new(5),
            &SimOptions::default(),
        )
        .expect("completes");
        assert_eq!(out.records.len(), 25);
    }

    #[test]
    fn reset_restores_determinism() {
        let mut p = RandomPolicy::new(9);
        let a = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs(20),
            &mut p,
            &SimOptions::default(),
        )
        .expect("completes");
        p.reset();
        let b = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs(20),
            &mut p,
            &SimOptions::default(),
        )
        .expect("completes");
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs(20),
            &mut RandomPolicy::new(1),
            &SimOptions::default(),
        )
        .expect("completes");
        let b = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs(20),
            &mut RandomPolicy::new(2),
            &SimOptions::default(),
        )
        .expect("completes");
        assert_ne!(a.records, b.records);
    }
}
