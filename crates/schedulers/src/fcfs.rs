//! First-Come-First-Served, strictly in arrival order.

use rsched_sim::{Action, DelayReason, SchedulingPolicy, SystemView};

/// Strict FCFS: start the head of the queue when it fits; otherwise wait —
/// never skip ahead. This is the paper's normalization baseline (every
/// figure reports metrics relative to FCFS = 1.0), and the policy whose
/// convoy effect the Long-Job-Dominant and Adversarial scenarios expose.
#[derive(Debug, Clone, Default)]
pub struct Fcfs {
    /// Why the most recent `decide` returned [`Action::Delay`]; harvested
    /// by the kernel through [`SchedulingPolicy::provenance`].
    last_delay: Option<DelayReason>,
}

impl Fcfs {
    /// A fresh FCFS policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulingPolicy for Fcfs {
    fn name(&self) -> &str {
        "FCFS"
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        self.last_delay = None;
        if view.all_jobs_started() {
            return Action::Stop;
        }
        match view.head_of_queue() {
            Some(head) if view.fits_now(head) => Action::StartJob(head.id),
            Some(head) => {
                self.last_delay = Some(DelayReason::HeadBlocked { head: head.id });
                Action::Delay
            }
            None => {
                self.last_delay = Some(DelayReason::QueueEmpty);
                Action::Delay
            }
        }
    }

    fn provenance(&mut self) -> Option<DelayReason> {
        self.last_delay.take()
    }

    fn reset(&mut self) {
        self.last_delay = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobId, JobSpec};
    use rsched_sim::{run_simulation, SimOptions};
    use rsched_simkit::{SimDuration, SimTime};

    fn spec(id: u32, submit_s: u64, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    fn run(jobs: &[JobSpec]) -> rsched_sim::SimOutcome {
        run_simulation(
            ClusterConfig::new(8, 64),
            jobs,
            &mut Fcfs::default(),
            &SimOptions::default(),
        )
        .expect("completes")
    }

    #[test]
    fn executes_in_arrival_order() {
        let jobs = vec![spec(0, 0, 100, 8), spec(1, 10, 10, 8), spec(2, 20, 10, 8)];
        let out = run(&jobs);
        let starts: Vec<(JobId, u64)> = out
            .records
            .iter()
            .map(|r| (r.spec.id, r.start.as_secs()))
            .collect();
        assert_eq!(
            starts,
            vec![(JobId(0), 0), (JobId(1), 100), (JobId(2), 110)]
        );
    }

    #[test]
    fn convoy_effect_blocks_small_jobs() {
        // The head needs the whole machine and runs long; later 1-node jobs
        // must wait even though they'd fit alongside nothing.
        let jobs = vec![
            spec(0, 0, 50, 8),   // machine-filling job running first
            spec(1, 5, 1000, 8), // head that can't start until t=50
            spec(2, 6, 10, 1),   // small job stuck behind the head
        ];
        let out = run(&jobs);
        let small = out.records.iter().find(|r| r.spec.id == JobId(2)).unwrap();
        // Strict FCFS: job 2 starts only after job 1 started (t=50).
        assert!(
            small.start >= SimTime::from_secs(50),
            "FCFS must not backfill: start {}",
            small.start
        );
    }

    #[test]
    fn concurrent_starts_when_head_fits_repeatedly() {
        let jobs = vec![spec(0, 0, 100, 4), spec(1, 0, 100, 4)];
        let out = run(&jobs);
        assert!(out.records.iter().all(|r| r.start == SimTime::ZERO));
        assert_eq!(out.end_time, SimTime::from_secs(100));
    }

    #[test]
    fn is_deterministic() {
        let jobs: Vec<JobSpec> = (0..30)
            .map(|i| spec(i, (i as u64 * 13) % 40, 10 + (i as u64 * 7) % 50, 1 + i % 8))
            .collect();
        let a = run(&jobs);
        let b = run(&jobs);
        assert_eq!(a.records, b.records);
    }
}
