//! The optimization-based baseline (paper §3.3's Google OR-Tools role).
//!
//! Solves the whole workload *offline* — release times known upfront, as an
//! optimization baseline is entitled to — for minimum makespan via
//! `rsched-cpsolver`, then replays the planned order against the live
//! cluster: the next job in planned-start order starts as soon as it has
//! arrived and fits. With truthful walltimes this reproduces the planned
//! schedule exactly; with overestimated walltimes (Polaris) it can only
//! finish earlier.
//!
//! The objective is makespan/utilization only — no fairness term — which
//! is precisely the trade-off profile the paper measures for OR-Tools
//! (top utilization, degraded wait-time fairness).

use std::collections::BTreeSet;

use rsched_cluster::{JobId, JobSpec};
use rsched_cpsolver::{Instance, Solver, SolverConfig, Task};
use rsched_sim::{Action, SchedulingPolicy, SystemView};

/// The offline-plan-replay policy.
pub struct OrToolsPolicy {
    jobs: Vec<JobSpec>,
    solver: Solver,
    /// Planned `(start_ms, job)` pairs, ascending.
    plan: Option<Vec<(u64, JobId)>>,
    started: BTreeSet<JobId>,
}

impl OrToolsPolicy {
    /// Build for a known workload with the default solver budget.
    pub fn new(jobs: &[JobSpec]) -> Self {
        Self::with_config(jobs, SolverConfig::default())
    }

    /// Build with a custom solver configuration (benchmarks shrink the
    /// budget; ablations raise it).
    pub fn with_config(jobs: &[JobSpec], config: SolverConfig) -> Self {
        OrToolsPolicy {
            jobs: jobs.to_vec(),
            solver: Solver::new(config),
            plan: None,
            started: BTreeSet::new(),
        }
    }

    fn ensure_plan(&mut self, view: &SystemView<'_>) {
        if self.plan.is_some() {
            return;
        }
        let tasks: Vec<Task> = self
            .jobs
            .iter()
            .map(|j| Task {
                id: j.id.0,
                duration: j.walltime.as_millis().max(1),
                nodes: j.nodes,
                memory: j.memory_gb,
                release: j.submit.as_millis(),
            })
            .collect();
        let instance = Instance::new(tasks, view.config.nodes, view.config.memory_gb);
        let solution = self.solver.solve(&instance);
        let mut plan: Vec<(u64, JobId)> = solution
            .schedule
            .starts
            .iter()
            .zip(&self.jobs)
            .map(|(&start, job)| (start, job.id))
            .collect();
        plan.sort();
        self.plan = Some(plan);
    }
}

impl SchedulingPolicy for OrToolsPolicy {
    fn name(&self) -> &str {
        "OR-Tools"
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        if view.all_jobs_started() {
            return Action::Stop;
        }
        self.ensure_plan(view);
        let plan = self.plan.as_ref().expect("ensured above");
        // The next unstarted job in planned order.
        let next = plan
            .iter()
            .find(|(_, id)| !self.started.contains(id))
            .map(|&(_, id)| id);
        let Some(next_id) = next else {
            return Action::Delay;
        };
        match view.waiting_job(next_id) {
            Some(spec) if view.fits_now(spec) => Action::StartJob(next_id),
            // Not yet arrived or doesn't fit yet: hold the plan order.
            _ => Action::Delay,
        }
    }

    fn observe(&mut self, outcome: &rsched_sim::ActionOutcome) {
        if outcome.accepted() {
            if let Some(id) = outcome.action.job_id() {
                self.started.insert(id);
            }
        }
    }

    fn reset(&mut self) {
        self.plan = None;
        self.started.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::ClusterConfig;
    use rsched_sim::{run_simulation, SimOptions};
    use rsched_simkit::{SimDuration, SimTime};

    fn spec(id: u32, submit_s: u64, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    fn fast_config() -> SolverConfig {
        SolverConfig {
            sa_iterations_per_task: 50,
            exact_max_tasks: 6,
            ..SolverConfig::default()
        }
    }

    fn run(jobs: &[JobSpec]) -> rsched_sim::SimOutcome {
        run_simulation(
            ClusterConfig::new(8, 64),
            jobs,
            &mut OrToolsPolicy::with_config(jobs, fast_config()),
            &SimOptions::default(),
        )
        .expect("completes")
    }

    #[test]
    fn achieves_optimal_makespan_on_packable_instance() {
        // Two wide + two narrow, optimal pairing gives 200 s (vs 300+ for a
        // bad order).
        let jobs = vec![
            spec(0, 0, 100, 6),
            spec(1, 0, 100, 6),
            spec(2, 0, 100, 2),
            spec(3, 0, 100, 2),
        ];
        let out = run(&jobs);
        assert_eq!(out.end_time, SimTime::from_secs(200));
    }

    #[test]
    fn beats_fcfs_makespan_on_fragmenting_workload() {
        // Alternating wide/narrow jobs that FCFS handles poorly.
        let mut jobs = Vec::new();
        for i in 0..6 {
            jobs.push(spec(i * 2, 0, 100, 6));
            jobs.push(spec(i * 2 + 1, 0, 100, 2));
        }
        let or = run(&jobs);
        let fcfs = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut crate::fcfs::Fcfs::default(),
            &SimOptions::default(),
        )
        .expect("completes");
        assert!(
            or.end_time <= fcfs.end_time,
            "OR-Tools {} vs FCFS {}",
            or.end_time,
            fcfs.end_time
        );
    }

    #[test]
    fn respects_release_times() {
        let jobs = vec![spec(0, 100, 10, 8), spec(1, 0, 10, 8)];
        let out = run(&jobs);
        let late = out.records.iter().find(|r| r.spec.id == JobId(0)).unwrap();
        assert!(late.start >= SimTime::from_secs(100));
    }

    #[test]
    fn reset_replans() {
        let jobs = vec![spec(0, 0, 10, 4), spec(1, 0, 10, 4)];
        let mut p = OrToolsPolicy::with_config(&jobs, fast_config());
        let a = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut p,
            &SimOptions::default(),
        )
        .expect("completes");
        p.reset();
        let b = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut p,
            &SimOptions::default(),
        )
        .expect("completes");
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn completes_a_mixed_dynamic_workload() {
        let jobs: Vec<JobSpec> = (0..25)
            .map(|i| {
                spec(
                    i,
                    (i as u64 * 17) % 120,
                    10 + (i as u64 * 23) % 200,
                    1 + i % 8,
                )
            })
            .collect();
        let out = run(&jobs);
        assert_eq!(out.records.len(), 25);
    }
}
