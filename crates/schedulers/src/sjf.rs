//! Shortest Job First.

use rsched_sim::{Action, DelayReason, SchedulingPolicy, SystemView};

/// SJF: among the waiting jobs that fit right now, start the one with the
/// shortest *estimated* runtime (walltime). Reduces turnaround at the cost
/// of starving long jobs — the fairness trade-off the paper calls out.
#[derive(Debug, Clone, Default)]
pub struct Sjf {
    /// Why the most recent `decide` returned [`Action::Delay`]; harvested
    /// by the kernel through [`SchedulingPolicy::provenance`].
    last_delay: Option<DelayReason>,
}

impl Sjf {
    /// A fresh SJF policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulingPolicy for Sjf {
    fn name(&self) -> &str {
        "SJF"
    }

    fn decide(&mut self, view: &SystemView<'_>) -> Action {
        self.last_delay = None;
        if view.all_jobs_started() {
            return Action::Stop;
        }
        match view.eligible_now().min_by_key(|j| (j.walltime, j.id)) {
            Some(j) => Action::StartJob(j.id),
            None => {
                self.last_delay = Some(if view.waiting.is_empty() {
                    DelayReason::QueueEmpty
                } else {
                    DelayReason::NoFitNow
                });
                Action::Delay
            }
        }
    }

    fn provenance(&mut self) -> Option<DelayReason> {
        self.last_delay.take()
    }

    fn reset(&mut self) {
        self.last_delay = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_cluster::{ClusterConfig, JobId, JobSpec};
    use rsched_sim::{run_simulation, SimOptions};
    use rsched_simkit::{SimDuration, SimTime};

    fn spec(id: u32, submit_s: u64, dur_s: u64, nodes: u32) -> JobSpec {
        JobSpec::new(
            id,
            id % 3,
            SimTime::from_secs(submit_s),
            SimDuration::from_secs(dur_s),
            nodes,
            1,
        )
    }

    fn run(jobs: &[JobSpec]) -> rsched_sim::SimOutcome {
        run_simulation(
            ClusterConfig::new(8, 64),
            jobs,
            &mut Sjf::default(),
            &SimOptions::default(),
        )
        .expect("completes")
    }

    #[test]
    fn shortest_job_starts_first() {
        // Machine fits one job at a time; three jobs of different length.
        let jobs = vec![spec(0, 0, 300, 8), spec(1, 0, 10, 8), spec(2, 0, 100, 8)];
        let out = run(&jobs);
        let order: Vec<JobId> = {
            let mut recs = out.records.clone();
            recs.sort_by_key(|r| r.start);
            recs.iter().map(|r| r.spec.id).collect()
        };
        assert_eq!(order, vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn sjf_beats_fcfs_on_average_wait_for_static_loads() {
        let jobs: Vec<JobSpec> = (0..20)
            .map(|i| spec(i, 0, 10 + (i as u64 * 97) % 500, 8))
            .collect();
        let sjf = run(&jobs);
        let fcfs = run_simulation(
            ClusterConfig::new(8, 64),
            &jobs,
            &mut crate::fcfs::Fcfs::default(),
            &SimOptions::default(),
        )
        .expect("completes");
        let wait = |out: &rsched_sim::SimOutcome| -> f64 {
            out.records
                .iter()
                .map(|r| r.wait().as_secs_f64())
                .sum::<f64>()
                / out.records.len() as f64
        };
        assert!(
            wait(&sjf) <= wait(&fcfs),
            "SJF avg wait {} should not exceed FCFS {}",
            wait(&sjf),
            wait(&fcfs)
        );
    }

    #[test]
    fn long_jobs_are_starved_while_short_ones_flow() {
        // One long job and a stream of short ones that keep arriving
        // before the machine frees fully.
        let mut jobs = vec![spec(0, 0, 50, 8)];
        for i in 1..10 {
            jobs.push(spec(i, 0, 5, 8));
        }
        let out = run(&jobs);
        let long = out.records.iter().find(|r| r.spec.id == JobId(0)).unwrap();
        // All nine short jobs (45 s total) run before the 50 s job.
        assert_eq!(long.start, SimTime::from_secs(45));
    }

    #[test]
    fn skips_blocked_head_unlike_fcfs() {
        let jobs = vec![
            spec(0, 0, 100, 7),  // running first, leaves one node free
            spec(1, 5, 1000, 8), // long head, blocked
            spec(2, 6, 10, 1),   // small job SJF happily starts
        ];
        let out = run(&jobs);
        let small = out.records.iter().find(|r| r.spec.id == JobId(2)).unwrap();
        assert_eq!(small.start, SimTime::from_secs(6), "no convoy under SJF");
    }
}
